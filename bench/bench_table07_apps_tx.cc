// Table 7: top application categories ranked by upload (TX) volume,
// per context and year (Android).
#include "analysis/apps.h"
#include "common.h"

namespace {

using namespace tokyonet;

void print_reproduction() {
  bench::print_header("bench_table07_apps_tx",
                      "Table 7 (top app categories by TX volume)");
  for (Year y : kAllYears) {
    const Dataset& ds = bench::campaign(y);
    const analysis::AppBreakdown b = analysis::app_breakdown(
        ds, bench::classification(y), bench::home_cells(y));
    std::printf("\n(%s)\n", std::string(to_string(y)).c_str());
    io::TextTable t({"rank", "Cell home", "%", "Cell other", "%", "WiFi home",
                     "%", "WiFi public", "%"});
    std::vector<std::vector<analysis::AppBreakdown::Entry>> tops;
    for (int ctx = 0; ctx < analysis::kNumAppContexts; ++ctx) {
      tops.push_back(
          b.top(static_cast<analysis::AppContext>(ctx), /*rx=*/false, 5));
    }
    for (int rank = 0; rank < 5; ++rank) {
      std::vector<std::string> row{std::to_string(rank + 1)};
      for (const auto& top : tops) {
        if (rank < static_cast<int>(top.size())) {
          row.push_back(std::string(
              to_string(top[static_cast<std::size_t>(rank)].category)));
          row.push_back(io::TextTable::num(
              100 * top[static_cast<std::size_t>(rank)].share));
        } else {
          row.push_back("-");
          row.push_back("-");
        }
      }
      t.add_row(std::move(row));
    }
    t.print();
  }
  std::printf("\npaper highlights: social/communication upload-heavy on "
              "cellular; productivity (online storage, WiFi-gated sync) "
              "peaks at 39.5%% of WiFi-home TX in 2014\n");
}

void BM_AppBreakdownTx(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2014);
  const auto& cls = bench::classification(Year::Y2014);
  const auto& home_cells = bench::home_cells(Year::Y2014);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::app_breakdown(ds, cls, home_cells));
  }
}
BENCHMARK(BM_AppBreakdownTx)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_MAIN()
