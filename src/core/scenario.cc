#include "core/scenario.h"

namespace tokyonet {
namespace {

// Occupation mix per year, from the paper's user survey (Table 2), in
// enum order: government, office, engineer, worker(other), professional,
// self-owned, part-timer, housewife, student, other.
constexpr std::array<double, kNumOccupations> kOccupations2013{
    2.1, 20.0, 16.7, 12.8, 2.4, 6.1, 9.0, 15.0, 9.6, 6.3};
constexpr std::array<double, kNumOccupations> kOccupations2014{
    3.4, 20.1, 14.7, 13.7, 2.0, 6.7, 10.1, 14.2, 8.3, 6.8};
constexpr std::array<double, kNumOccupations> kOccupations2015{
    2.4, 23.6, 16.6, 13.2, 2.8, 5.6, 10.6, 13.3, 2.7, 7.1};

ScenarioConfig base_2013() {
  ScenarioConfig c;
  c.year = Year::Y2013;
  c.start_date = Date{2013, 3, 7};  // Thu, as in Table 1
  c.num_days = 16;
  c.seed = 20130307;

  c.population.n_android = 948;
  c.population.n_ios = 807;
  c.population.occupation_weights = kOccupations2013;

  c.adoption.lte_device_share = 0.25;
  c.adoption.home_ap_ownership = 0.66;
  c.adoption.office_byod_rate = 0.24;
  c.adoption.public_config_android = 0.18;
  c.adoption.public_config_ios = 0.38;
  c.adoption.cellular_intensive_frac = 0.35;
  c.adoption.wifi_intensive_frac = 0.08;
  c.adoption.wifi_off_mean = 0.50;
  c.adoption.home_assoc_rate = 0.76;

  c.deployment.n_public_aps = 12000;
  c.deployment.n_venue_aps = 700;
  c.deployment.n_mobile_aps = 200;
  c.deployment.public_5ghz_frac = 0.15;
  c.deployment.home_5ghz_frac = 0.08;
  c.deployment.office_5ghz_frac = 0.10;
  c.deployment.scan_density_peak = 14.0;
  c.deployment.scan_strong_frac = 0.20;
  c.deployment.scan_5ghz_frac = 0.10;
  c.deployment.multi_provider_frac = 0.03;

  c.demand.daily_mu_log_mb = 4.00;
  c.demand.user_sigma = 0.85;
  c.demand.day_sigma = 0.70;
  c.demand.wifi_elasticity = 1.35;
  c.demand.sync_users_frac = 0.10;
  c.demand.sync_daily_mb = 15.0;
  c.demand.budget_excess_factor = 0.25;

  c.cap.relaxed = {false, false, false};
  c.update.active = false;
  return c;
}

ScenarioConfig base_2014() {
  ScenarioConfig c = base_2013();
  c.year = Year::Y2014;
  c.start_date = Date{2014, 2, 28};  // Fri
  c.num_days = 16;
  c.seed = 20140228;

  c.population.n_android = 887;
  c.population.n_ios = 789;
  c.population.occupation_weights = kOccupations2014;

  c.adoption.lte_device_share = 0.70;
  c.adoption.home_ap_ownership = 0.73;
  c.adoption.public_config_android = 0.27;
  c.adoption.public_config_ios = 0.47;
  c.adoption.cellular_intensive_frac = 0.28;
  c.adoption.wifi_off_mean = 0.45;
  c.adoption.home_assoc_rate = 0.78;

  c.deployment.n_public_aps = 20000;
  c.deployment.n_venue_aps = 800;
  c.deployment.n_mobile_aps = 220;
  c.deployment.public_5ghz_frac = 0.35;
  c.deployment.home_5ghz_frac = 0.12;
  c.deployment.office_5ghz_frac = 0.14;
  c.deployment.scan_density_peak = 20.0;
  c.deployment.scan_strong_frac = 0.21;
  c.deployment.scan_5ghz_frac = 0.25;
  c.deployment.multi_provider_frac = 0.07;

  c.demand.daily_mu_log_mb = 4.38;
  c.demand.wifi_elasticity = 1.30;
  c.demand.sync_users_frac = 0.18;
  c.demand.sync_daily_mb = 22.0;
  c.demand.budget_excess_factor = 0.06;
  return c;
}

ScenarioConfig base_2015() {
  ScenarioConfig c = base_2014();
  c.year = Year::Y2015;
  c.start_date = Date{2015, 2, 28};  // Sat, as on Fig 2's axis
  c.num_days = 26;                   // covers the iOS 8.2 tail (Fig 18)
  c.seed = 20150228;

  c.population.n_android = 835;
  c.population.n_ios = 781;
  c.population.occupation_weights = kOccupations2015;

  c.adoption.lte_device_share = 0.80;
  c.adoption.home_ap_ownership = 0.79;
  c.adoption.public_config_android = 0.35;
  c.adoption.public_config_ios = 0.55;
  c.adoption.cellular_intensive_frac = 0.22;
  c.adoption.wifi_off_mean = 0.40;
  c.adoption.home_assoc_rate = 0.87;

  c.deployment.n_public_aps = 26000;
  c.deployment.n_venue_aps = 900;
  c.deployment.n_mobile_aps = 250;
  c.deployment.public_5ghz_frac = 0.55;
  c.deployment.home_5ghz_frac = 0.17;
  c.deployment.office_5ghz_frac = 0.18;
  c.deployment.scan_density_peak = 28.0;
  c.deployment.scan_strong_frac = 0.22;
  c.deployment.scan_5ghz_frac = 0.40;
  c.deployment.multi_provider_frac = 0.12;

  c.demand.daily_mu_log_mb = 4.78;
  c.demand.wifi_elasticity = 1.30;
  c.demand.sync_users_frac = 0.22;
  c.demand.sync_daily_mb = 25.0;
  c.demand.budget_excess_factor = 0.06;

  // Two of three carriers relaxed the soft cap in Feb 2015 (§3.8).
  c.cap.relaxed = {true, true, false};

  c.update.active = true;
  c.update.release_day = 10;  // March 10th, 2015
  return c;
}

}  // namespace

ScenarioConfig scenario_config(Year year, double scale) {
  ScenarioConfig c;
  switch (year) {
    case Year::Y2013: c = base_2013(); break;
    case Year::Y2014: c = base_2014(); break;
    case Year::Y2015: c = base_2015(); break;
  }
  c.scale = scale;
  return c;
}

namespace {

/// Accumulating mixer (splitmix64 finalizer) fed field by field, so the
/// hash is independent of struct padding and layout.
struct ConfigHasher {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;

  void mix(std::uint64_t v) noexcept {
    std::uint64_t x = state ^ (v + 0x9E3779B97F4A7C15ull + (state << 6));
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    state = x;
  }
  void add(double v) noexcept {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  void add(std::uint64_t v) noexcept { mix(v); }
  void add(int v) noexcept { mix(static_cast<std::uint64_t>(v)); }
  void add(bool v) noexcept { mix(v ? 1 : 0); }
  template <typename T, std::size_t N>
  void add(const std::array<T, N>& a) noexcept {
    for (const T& v : a) add(v);
  }
};

}  // namespace

std::uint64_t scenario_hash(const ScenarioConfig& c,
                            int rng_version) noexcept {
  // Every field below feeds the simulation; keep this list in sync with
  // ScenarioConfig. The static_assert trips when the struct grows, as a
  // reminder to extend the hash (and bump io::kSnapshotVersion).
  static_assert(sizeof(ScenarioConfig) == 472,
                "ScenarioConfig changed: update scenario_hash()");
  ConfigHasher h;
  // The generator version participates in the hash: the same config run
  // under a different draw scheme produces a different dataset, so cached
  // snapshots keyed by this hash must miss when the RNG changes.
  h.add(rng_version);
  h.add(static_cast<int>(c.year));
  h.add(c.start_date.year);
  h.add(c.start_date.month);
  h.add(c.start_date.day);
  h.add(c.num_days);
  h.add(c.seed);
  h.add(c.scale);

  const PopulationParams& p = c.population;
  h.add(p.n_android);
  h.add(p.n_ios);
  h.add(p.organic_frac);
  h.add(p.occupation_weights);

  const AdoptionParams& a = c.adoption;
  h.add(a.lte_device_share);
  h.add(a.home_ap_ownership);
  h.add(a.office_byod_rate);
  h.add(a.public_config_android);
  h.add(a.public_config_ios);
  h.add(a.cellular_intensive_frac);
  h.add(a.wifi_intensive_frac);
  h.add(a.wifi_off_mean);
  h.add(a.ios_connect_boost);
  h.add(a.home_assoc_rate);

  const DeploymentParams& d = c.deployment;
  h.add(d.n_public_aps);
  h.add(d.n_venue_aps);
  h.add(d.n_mobile_aps);
  h.add(d.public_5ghz_frac);
  h.add(d.home_5ghz_frac);
  h.add(d.office_5ghz_frac);
  h.add(d.home_fon_frac);
  h.add(d.multi_provider_frac);
  h.add(d.scan_density_peak);
  h.add(d.scan_strong_frac);
  h.add(d.scan_5ghz_frac);

  const DemandParams& m = c.demand;
  h.add(m.daily_mu_log_mb);
  h.add(m.user_sigma);
  h.add(m.day_sigma);
  h.add(m.wifi_elasticity);
  h.add(m.upload_ratio);
  h.add(m.upload_ratio_sigma);
  h.add(m.sync_users_frac);
  h.add(m.sync_daily_mb);
  h.add(m.cell_budget_home_mb);
  h.add(m.cell_budget_no_home_mb);
  h.add(m.budget_excess_factor);

  const CapParams& cp = c.cap;
  h.add(cp.threshold_mb);
  h.add(cp.suppression);
  h.add(cp.peak_from_hour);
  h.add(cp.peak_to_hour);
  h.add(cp.relaxed);
  h.add(cp.relaxed_suppression);

  const UpdateParams& u = c.update;
  h.add(u.active);
  h.add(u.release_day);
  h.add(u.size_mb);
  h.add(u.home_hazard);
  h.add(u.seeker_hazard);
  h.add(u.weekend_boost);
  h.add(u.public_seeker_frac);

  return h.state;
}

}  // namespace tokyonet
