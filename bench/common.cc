#include "common.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "core/parallel.h"

namespace tokyonet::bench {

double bench_scale() {
  static const double scale = [] {
    if (const char* env = std::getenv("TOKYONET_BENCH_SCALE")) {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(env, &end);
      // A partial parse ("2x", "1.0abc") or empty/garbage input is a
      // user error: warn and fall back instead of silently using a
      // numeric prefix.
      if (end == env || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr,
                     "warning: ignoring unparsable TOKYONET_BENCH_SCALE=%s\n",
                     env);
        return 1.0;
      }
      if (v > 0.0) {
        if (v > 10.0) {
          std::fprintf(stderr,
                       "warning: TOKYONET_BENCH_SCALE=%g simulates a panel "
                       "%gx the paper's (~%d users); expect long runs\n",
                       v, v, static_cast<int>(v * 1750));
        }
        return v;
      }
      std::fprintf(stderr,
                   "warning: ignoring non-positive TOKYONET_BENCH_SCALE=%s\n",
                   env);
    }
    return 1.0;
  }();
  return scale;
}

// The lazy per-year caches below are initialized via std::call_once so
// concurrent first use (google-benchmark worker threads, TSan builds)
// is safe; the pointers are written exactly once and read-only after.

const Dataset& campaign(Year year) {
  static std::once_flag once[kNumYears];
  static const Dataset* cache[kNumYears] = {};
  const int i = static_cast<int>(year);
  std::call_once(once[i], [&] {
    sim::CampaignCacheStatus status;
    cache[i] = new Dataset(sim::cached_campaign(
        scenario_config(year, bench_scale()), &status));
    if (status.enabled) {
      // run_bench.sh greps these lines to count cache hits per run.
      std::printf("tokyonet-cache: %s %s\n", status.hit ? "hit" : "miss",
                  status.path.string().c_str());
      if (!status.detail.empty()) {
        std::fprintf(stderr, "tokyonet-cache: note: %s\n",
                     status.detail.c_str());
      }
    }
  });
  return *cache[i];
}

const analysis::AnalysisContext& context(Year year) {
  static std::once_flag once[kNumYears];
  static const analysis::AnalysisContext* cache[kNumYears] = {};
  const int i = static_cast<int>(year);
  std::call_once(once[i], [&] {
    cache[i] = new analysis::AnalysisContext(campaign(year));
  });
  return *cache[i];
}

const analysis::ApClassification& classification(Year year) {
  return context(year).classification();
}

const analysis::UpdateDetection& updates(Year year) {
  return context(year).updates();
}

const std::vector<analysis::UserDay>& days(Year year) {
  return context(year).days();
}

const analysis::UserClassifier& classifier(Year year) {
  return context(year).classifier();
}

const std::vector<GeoCell>& home_cells(Year year) {
  return context(year).home_cells();
}

void print_header(std::string_view experiment, std::string_view paper_ref) {
  std::printf("================================================================\n");
  std::printf("%.*s — reproduces %.*s\n", static_cast<int>(experiment.size()),
              experiment.data(), static_cast<int>(paper_ref.size()),
              paper_ref.data());
  std::printf("panel scale: %.2f (set TOKYONET_BENCH_SCALE to change)\n",
              bench_scale());
  std::printf("threads: %d (set TOKYONET_THREADS to change)\n",
              core::thread_count());
  std::printf("================================================================\n");
}

int bench_main(int argc, char** argv, void (*print_reproduction)()) {
  print_reproduction();
  std::printf("\n-- analysis kernel timings --\n");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace tokyonet::bench
