// Fig 2: aggregated traffic volume (Mbps) over the first campaign week
// of 2015 — cellular/WiFi x TX/RX, hourly.
#include "analysis/aggregate.h"
#include "common.h"

namespace {

using namespace tokyonet;

void BM_AggregateSeries(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::aggregate_series(ds, analysis::Stream::WifiRx));
  }
}
BENCHMARK(BM_AggregateSeries)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_FIGURE("fig02")
