#include "stats/descriptive.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tokyonet::stats {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double ss = 0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double percentile_sorted(std::span<const double> sorted, double p) noexcept {
  assert(p >= 0 && p <= 100);
  if (sorted.empty()) return 0;
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> xs, double p) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

double median(std::span<const double> xs) { return percentile(xs, 50); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  s.mean = mean(copy);
  s.median = percentile_sorted(copy, 50);
  s.p05 = percentile_sorted(copy, 5);
  s.p95 = percentile_sorted(copy, 95);
  s.min = copy.front();
  s.max = copy.back();
  return s;
}

double annual_growth_rate(std::span<const double> yearly) noexcept {
  if (yearly.size() < 2) return 0;
  const double first = yearly.front();
  const double last = yearly.back();
  if (first <= 0 || last <= 0) return 0;
  const double n = static_cast<double>(yearly.size() - 1);
  return std::pow(last / first, 1.0 / n) - 1.0;
}

LinearFit linear_fit(std::span<const double> xs,
                     std::span<const double> ys) noexcept {
  LinearFit f;
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return f;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0) return f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r2 = syy > 0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return f;
}

}  // namespace tokyonet::stats
