// ESSID vocabulary of the simulated region and the well-known-name
// matcher used by the paper's AP classification (§3.4.1): public networks
// are recognized by provider ESSIDs such as "0000docomo", "0001softbank"
// or "eduroam"; FON APs broadcasting a public ESSID from a home router
// get special-cased.
#pragma once

#include <string>
#include <string_view>

#include "stats/rng.h"

namespace tokyonet::net {

/// True if `essid` is one of the well-known public WiFi service names
/// (carrier offload networks, free municipal/commercial hotspots,
/// eduroam). This is the observable signal the classifier keys on.
[[nodiscard]] bool is_public_essid(std::string_view essid) noexcept;

/// True if `essid` is the FON community network name. FON boxes are home
/// routers that also broadcast a public ESSID; the paper classifies an AP
/// with a public FON ESSID as *home* when a user camps on it overnight.
[[nodiscard]] bool is_fon_essid(std::string_view essid) noexcept;

/// Generates ESSIDs for the AP universe. Home/office/venue names follow
/// Japanese consumer-router and corporate naming conventions; public
/// names are drawn from the provider catalogue with per-year weights
/// (carrier WiFi ramped up heavily from 2013).
class EssidFactory {
 public:
  /// `year_index`: 0 = 2013, 1 = 2014, 2 = 2015.
  explicit EssidFactory(int year_index) noexcept : year_(year_index) {}

  [[nodiscard]] std::string home(stats::Rng& rng) const;
  /// A small fraction of "home" routers are FON boxes.
  [[nodiscard]] std::string home_fon() const;
  [[nodiscard]] std::string office(stats::Rng& rng) const;
  [[nodiscard]] std::string public_hotspot(stats::Rng& rng) const;
  [[nodiscard]] std::string venue(stats::Rng& rng) const;
  [[nodiscard]] std::string mobile_hotspot(stats::Rng& rng) const;

 private:
  int year_;
};

}  // namespace tokyonet::net
