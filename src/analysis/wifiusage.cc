#include "analysis/wifiusage.h"

#include <algorithm>
#include <set>
#include <string_view>

namespace tokyonet::analysis {

ApsPerDay aps_per_day(const Dataset& ds, const std::vector<UserDay>& days,
                      const UserClassifier& classes) {
  const auto num_days = static_cast<std::size_t>(ds.num_days());
  std::vector<UserClass> klass(ds.devices.size() * num_days,
                               UserClass::Neither);
  for (const UserDay& d : days) {
    klass[value(d.device) * num_days + static_cast<std::size_t>(d.day)] =
        classes.classify(d);
  }

  std::array<std::array<double, 4>, 3> counts{};
  std::array<double, 3> totals{};

  std::set<std::uint32_t> seen;
  for (const DeviceInfo& dev : ds.devices) {
    const auto samples = ds.device_samples(dev.id);
    int cur_day = -1;
    seen.clear();
    auto flush = [&](int day) {
      if (cur_day < 0 || seen.empty()) {
        seen.clear();
        cur_day = day;
        return;
      }
      const auto k = std::min<std::size_t>(seen.size(), 4) - 1;
      const UserClass uc =
          klass[value(dev.id) * num_days + static_cast<std::size_t>(cur_day)];
      counts[0][k] += 1;
      totals[0] += 1;
      if (uc == UserClass::Heavy) {
        counts[1][k] += 1;
        totals[1] += 1;
      } else if (uc == UserClass::Light) {
        counts[2][k] += 1;
        totals[2] += 1;
      }
      seen.clear();
      cur_day = day;
    };
    for (const Sample& s : samples) {
      const int day = ds.calendar.day_of(s.bin);
      if (day != cur_day) flush(day);
      if (s.wifi_state == WifiState::Associated && s.ap != kNoAp) {
        seen.insert(value(s.ap));
      }
    }
    flush(-1);
  }

  ApsPerDay out;
  for (int c = 0; c < 3; ++c) {
    for (int k = 0; k < 4; ++k) {
      out.share[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)] =
          totals[static_cast<std::size_t>(c)] > 0
              ? counts[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)] /
                    totals[static_cast<std::size_t>(c)]
              : 0;
    }
  }
  return out;
}

HpoBreakdown hpo_breakdown(const Dataset& ds, const ApClassification& cls) {
  HpoBreakdown out;
  double total = 0;

  std::set<std::pair<int, std::string_view>> essids;  // (class, essid)
  for (const DeviceInfo& dev : ds.devices) {
    const auto samples = ds.device_samples(dev.id);
    int cur_day = -1;
    essids.clear();
    auto flush = [&](int day) {
      if (cur_day >= 0 && !essids.empty()) {
        std::array<int, 3> hpo{0, 0, 0};
        for (const auto& [c, name] : essids) ++hpo[static_cast<std::size_t>(c)];
        total += 1;
        if (hpo[0] + hpo[1] + hpo[2] >= 4) {
          out.four_plus += 1;
        } else {
          out.share[hpo] += 1;
        }
      }
      essids.clear();
      cur_day = day;
    };
    for (const Sample& s : samples) {
      const int day = ds.calendar.day_of(s.bin);
      if (day != cur_day) flush(day);
      if (s.wifi_state == WifiState::Associated && s.ap != kNoAp) {
        essids.emplace(static_cast<int>(cls.class_of(s.ap)),
                       ds.aps[value(s.ap)].essid);
      }
    }
    flush(-1);
  }

  if (total > 0) {
    for (auto& [key, v] : out.share) v /= total;
    out.four_plus /= total;
  }
  return out;
}

AssociationDurations association_durations(const Dataset& ds,
                                           const ApClassification& cls) {
  AssociationDurations out;
  const double bin_hours = kMinutesPerBin / 60.0;

  for (const DeviceInfo& dev : ds.devices) {
    const auto samples = ds.device_samples(dev.id);
    ApId run_ap = kNoAp;
    int run_len = 0;
    TimeBin prev_bin = 0;
    auto flush = [&]() {
      if (run_ap == kNoAp || run_len == 0) return;
      const double hours = run_len * bin_hours;
      switch (cls.class_of(run_ap)) {
        case ApClass::Home: out.home_hours.push_back(hours); break;
        case ApClass::Public: out.public_hours.push_back(hours); break;
        case ApClass::Other:
          if (cls.is_office[value(run_ap)]) {
            out.office_hours.push_back(hours);
          }
          break;
      }
      run_ap = kNoAp;
      run_len = 0;
    };
    for (const Sample& s : samples) {
      const bool assoc = s.wifi_state == WifiState::Associated && s.ap != kNoAp;
      const bool contiguous = run_len == 0 || s.bin == prev_bin + 1;
      if (!assoc || !contiguous || (run_ap != kNoAp && s.ap != run_ap)) {
        flush();
      }
      if (assoc) {
        run_ap = s.ap;
        ++run_len;
      }
      prev_bin = s.bin;
    }
    flush();
  }
  return out;
}

BandFractions band_fractions(const Dataset& ds, const ApClassification& cls) {
  int home5 = 0, home_n = 0, office5 = 0, office_n = 0, pub5 = 0, pub_n = 0;
  for (std::size_t i = 0; i < ds.aps.size(); ++i) {
    if (!cls.associated[i]) continue;
    const bool is5 = ds.aps[i].band == Band::B5GHz;
    switch (cls.ap_class[i]) {
      case ApClass::Home:
        ++home_n;
        home5 += is5;
        break;
      case ApClass::Public:
        ++pub_n;
        pub5 += is5;
        break;
      case ApClass::Other:
        if (cls.is_office[i]) {
          ++office_n;
          office5 += is5;
        }
        break;
    }
  }
  BandFractions f;
  if (home_n > 0) f.home = static_cast<double>(home5) / home_n;
  if (office_n > 0) f.office = static_cast<double>(office5) / office_n;
  if (pub_n > 0) f.publik = static_cast<double>(pub5) / pub_n;
  return f;
}

}  // namespace tokyonet::analysis
