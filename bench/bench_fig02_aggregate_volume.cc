// Fig 2: aggregated traffic volume (Mbps) over the first campaign week
// of 2015 — cellular/WiFi x TX/RX, hourly.
#include "analysis/aggregate.h"
#include "common.h"

namespace {

using namespace tokyonet;

void print_reproduction() {
  bench::print_header("bench_fig02_aggregate_volume",
                      "Fig 2 (aggregated traffic volume, 2015)");
  const Dataset& ds = bench::campaign(Year::Y2015);
  const auto cell_rx = analysis::aggregate_series(ds, analysis::Stream::CellRx);
  const auto cell_tx = analysis::aggregate_series(ds, analysis::Stream::CellTx);
  const auto wifi_rx = analysis::aggregate_series(ds, analysis::Stream::WifiRx);
  const auto wifi_tx = analysis::aggregate_series(ds, analysis::Stream::WifiTx);

  io::TextTable t({"date", "hour", "Cell TX", "Cell RX", "WiFi TX", "WiFi RX"});
  for (int day = 0; day < 8 && day < ds.num_days(); ++day) {
    for (int hour = 0; hour < 24; hour += 3) {
      const auto i = static_cast<std::size_t>(day * 24 + hour);
      t.add_row({ds.calendar.day_label(day), std::to_string(hour) + ":00",
                 io::TextTable::num(cell_tx.mbps[i], 2),
                 io::TextTable::num(cell_rx.mbps[i], 2),
                 io::TextTable::num(wifi_tx.mbps[i], 2),
                 io::TextTable::num(wifi_rx.mbps[i], 2)});
    }
  }
  t.print();

  const double wifi = wifi_rx.total_mb() + wifi_tx.total_mb();
  const double cell = cell_rx.total_mb() + cell_tx.total_mb();
  std::printf("\nWiFi share of total volume: %.0f%% (paper: 67%% in 2015)\n",
              100 * wifi / (wifi + cell));

  const analysis::WeekSplit cell_split =
      analysis::weekday_weekend_split(ds, analysis::Stream::CellRx);
  const analysis::WeekSplit wifi_split =
      analysis::weekday_weekend_split(ds, analysis::Stream::WifiRx);
  std::printf("weekday vs weekend mean rate [Mbps]: cellular %.1f vs %.1f, "
              "WiFi %.1f vs %.1f   [paper: cellular drops on weekends, "
              "WiFi rises]\n",
              cell_split.weekday_mbps, cell_split.weekend_mbps,
              wifi_split.weekday_mbps, wifi_split.weekend_mbps);
}

void BM_AggregateSeries(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::aggregate_series(ds, analysis::Stream::WifiRx));
  }
}
BENCHMARK(BM_AggregateSeries)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_MAIN()
