// Streaming ingest throughput (DESIGN.md §5e): loopback replay of each
// campaign through the sharded IngestServer, verifying on the way that
// the incremental results stay byte-identical to the batch kernels.
//
// Reproduction lines are greppable (`tokyonet-ingest: key=value ...`)
// so tools/run_bench.sh can lift replay throughput into the bench JSON.
#include "analysis/incremental.h"
#include "common.h"
#include "ingest/replay.h"
#include "ingest/server.h"

#include <chrono>
#include <cinttypes>

namespace {

using namespace tokyonet;

struct LoopbackRun {
  ingest::ReplayStats stats;
  ingest::IngestCounters counters;
  analysis::StreamResult result;
  double wall_seconds = 0.0;  // replay + drain, i.e. until committed
  bool clean = false;
};

/// Replays `ds` through an in-process server and waits (shutdown) until
/// every routed batch is committed, so records/sec measures the full
/// pipeline: encode -> parse -> route -> shard commit -> incremental.
LoopbackRun run_loopback(const Dataset& ds, int shards, bool shed,
                         std::size_t queue_capacity) {
  ingest::IngestConfig cfg;
  cfg.shards = shards;
  cfg.queue_capacity = queue_capacity;
  cfg.shed_on_overflow = shed;
  ingest::IngestServer server(cfg);

  LoopbackRun run;
  const auto t0 = std::chrono::steady_clock::now();
  {
    auto session = server.connect();
    ingest::SessionSink sink(*session);
    const bool sent =
        ingest::replay_dataset(ds, ingest::ReplayOptions{}, sink, &run.stats);
    run.clean = session->finish() && sent;
  }
  server.shutdown();  // drain: all accepted batches are committed now
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  run.counters = server.counters();
  run.result = server.result();
  return run;
}

void print_run(Year year, const char* mode, int shards,
               const LoopbackRun& run, bool verified_vs_batch) {
  const double rps = run.wall_seconds > 0.0
                         ? static_cast<double>(run.stats.records) /
                               run.wall_seconds
                         : 0.0;
  std::printf(
      "tokyonet-ingest: year=%d mode=%s shards=%d records=%" PRIu64
      " app_records=%" PRIu64 " frames=%" PRIu64 " bytes=%" PRIu64
      " committed=%" PRIu64 " shed=%" PRIu64
      " seconds=%.3f records_per_sec=%.0f clean=%d verified=%d\n",
      year_number(year), mode, shards, run.stats.records,
      run.stats.app_records, run.stats.frames, run.stats.bytes,
      run.counters.records_committed, run.counters.records_shed,
      run.wall_seconds, rps, run.clean ? 1 : 0, verified_vs_batch ? 1 : 0);
}

void print_reproduction() {
  bench::print_header("bench_ingest",
                      "streaming ingest replay (DESIGN.md §5e)");
  for (const Year year : {Year::Y2013, Year::Y2014, Year::Y2015}) {
    const Dataset& ds = bench::campaign(year);  // materialize pre-server
    const analysis::StreamResult batch = analysis::batch_stream_result(ds);
    for (const int shards : {1, 4}) {
      const LoopbackRun run = run_loopback(ds, shards, /*shed=*/false,
                                           /*queue_capacity=*/64);
      const std::string diff =
          analysis::compare_stream_results(run.result, batch);
      if (!run.clean || !diff.empty()) {
        std::printf("bench_ingest: FAILED (year=%d shards=%d): %s\n",
                    year_number(year), shards,
                    diff.empty() ? "replay not clean" : diff.c_str());
      }
      print_run(year, "block", shards, run, run.clean && diff.empty());
    }
  }
  // Shed mode: a deliberately tiny queue so the drop-with-counter path
  // is exercised under load. Lossy by design -> no equivalence check.
  const LoopbackRun shed =
      run_loopback(bench::campaign(Year::Y2015), 4, /*shed=*/true,
                   /*queue_capacity=*/4);
  print_run(Year::Y2015, "shed", 4, shed, false);
}

void BM_LoopbackReplay(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  const int shards = static_cast<int>(state.range(0));
  std::uint64_t records = 0;
  for (auto _ : state) {
    const LoopbackRun run =
        run_loopback(ds, shards, /*shed=*/false, /*queue_capacity=*/64);
    records += run.stats.records;
    benchmark::DoNotOptimize(run.counters.records_committed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_LoopbackReplay)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Pure producer side: frame encode + CRC without a server, to separate
// wire-format cost from routing/commit cost.
class NullSink final : public ingest::FrameSink {
 public:
  [[nodiscard]] bool write(std::span<const std::uint8_t> bytes) override {
    bytes_ += bytes.size();
    return true;
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  std::uint64_t bytes_ = 0;
};

void BM_EncodeFrames(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  std::uint64_t records = 0;
  for (auto _ : state) {
    NullSink sink;
    ingest::ReplayStats stats;
    const bool ok =
        ingest::replay_dataset(ds, ingest::ReplayOptions{}, sink, &stats);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(sink.bytes());
    records += stats.records;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
}
BENCHMARK(BM_EncodeFrames)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_MAIN()
