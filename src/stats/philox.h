// Counter-based random number generation (Philox4x32-10).
//
// The simulator's hot path keys every draw by *where it happens* rather
// than by how many draws preceded it:
//
//     value = philox(key(seed), counter(device, lane, slot))
//
// so any device block — one device, sixteen, or the whole panel — can be
// generated independently and still reproduce the exact same campaign.
// This is the property ROADMAP item 1's streaming/out-of-core generation
// needs: a device's (day, bin) draws can be produced on any machine, in
// any order, with no per-device engine state to carry around.
//
// The distribution transforms here are *stateless*: each one maps a
// fixed number of counter outputs to a variate (normal uses an
// inverse-CDF rational approximation instead of Box-Muller, so there is
// no cached second variate — the asymmetric cache-drop bug the old
// Rng::poisson normal-approximation branch had cannot recur).
// Categorical/zipf draws on hot paths go through the precomputed tables
// in stats/tables.h instead of per-draw weight scans.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "stats/rng.h"   // splitmix64
#include "stats/simd.h"  // ISA detection + intrinsics

namespace tokyonet::stats {

/// One Philox4x32-10 block (Salmon et al., SC'11), the reference
/// constants from Random123. Maps a 128-bit counter and 64-bit key to
/// 128 bits of output.
[[nodiscard]] constexpr std::array<std::uint32_t, 4> philox4x32(
    std::array<std::uint32_t, 4> ctr, std::array<std::uint32_t, 2> key) noexcept {
  constexpr std::uint32_t kMul0 = 0xD2511F53u;
  constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
  constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t p0 = std::uint64_t{kMul0} * ctr[0];
    const std::uint64_t p1 = std::uint64_t{kMul1} * ctr[2];
    ctr = {static_cast<std::uint32_t>(p1 >> 32) ^ ctr[1] ^ key[0],
           static_cast<std::uint32_t>(p1),
           static_cast<std::uint32_t>(p0 >> 32) ^ ctr[3] ^ key[1],
           static_cast<std::uint32_t>(p0)};
    key[0] += kWeyl0;
    key[1] += kWeyl1;
  }
  return ctr;
}

/// Two consecutive Philox4x32-10 blocks — counters identical except
/// ctr[2] (the slot), which takes `ctr[2]` and `ctr[2] + 1` — returned
/// as the four 64-bit outputs in draw order. On SSE2 both blocks run
/// through one round loop (pmuludq performs the two 32x32->64 multiplies
/// of a round for both blocks at once); elsewhere it is two scalar
/// blocks. Every path produces bit-identical values: the pair is purely
/// a throughput optimization for lanes that consume > 2 draws.
[[nodiscard]] inline std::array<std::uint64_t, 4> philox4x32_pair(
    std::array<std::uint32_t, 4> ctr, std::array<std::uint32_t, 2> key) noexcept {
#if defined(TOKYONET_SIMD_SSE2)
  constexpr std::uint32_t kMul0 = 0xD2511F53u;
  constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  // Lane layout: even 32-bit lanes hold block A, odd pairs block B.
  //   v02 = [c0_A, c2_A, c0_B, c2_B]   (the multiplied words)
  //   v13 = [c1_A, c3_A, c1_B, c3_B]   (the xored words)
  __m128i v02 = _mm_set_epi32(static_cast<int>(ctr[2] + 1),
                              static_cast<int>(ctr[0]),
                              static_cast<int>(ctr[2]),
                              static_cast<int>(ctr[0]));
  __m128i v13 = _mm_set_epi32(static_cast<int>(ctr[3]),
                              static_cast<int>(ctr[1]),
                              static_cast<int>(ctr[3]),
                              static_cast<int>(ctr[1]));
  __m128i k = _mm_set_epi32(static_cast<int>(key[1]),
                            static_cast<int>(key[0]),
                            static_cast<int>(key[1]),
                            static_cast<int>(key[0]));
  const __m128i weyl = _mm_set_epi32(static_cast<int>(0xBB67AE85u),
                                     static_cast<int>(0x9E3779B9u),
                                     static_cast<int>(0xBB67AE85u),
                                     static_cast<int>(0x9E3779B9u));
  const __m128i mul0 = _mm_set1_epi32(static_cast<int>(kMul0));
  const __m128i mul1 = _mm_set1_epi32(static_cast<int>(kMul1));
  const __m128i lo32 = _mm_set1_epi64x(0xFFFFFFFFll);
  for (int round = 0; round < 10; ++round) {
    const __m128i p0 = _mm_mul_epu32(v02, mul0);                  // c0 * M0
    const __m128i p1 = _mm_mul_epu32(_mm_srli_epi64(v02, 32), mul1);  // c2 * M1
    // New multiplied words: {hi(p1), hi(p0)} ^ {c1, c3} ^ {k0, k1}.
    const __m128i hi =
        _mm_or_si128(_mm_srli_epi64(p1, 32),
                     _mm_slli_epi64(_mm_srli_epi64(p0, 32), 32));
    // New xored words: {lo(p1), lo(p0)}.
    const __m128i lo = _mm_or_si128(_mm_and_si128(p1, lo32),
                                    _mm_slli_epi64(_mm_and_si128(p0, lo32), 32));
    v02 = _mm_xor_si128(_mm_xor_si128(hi, v13), k);
    v13 = lo;
    k = _mm_add_epi32(k, weyl);
  }
  alignas(16) std::uint32_t a02[4];
  alignas(16) std::uint32_t a13[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(a02), v02);
  _mm_store_si128(reinterpret_cast<__m128i*>(a13), v13);
  return {(std::uint64_t{a13[0]} << 32) | a02[0],
          (std::uint64_t{a13[1]} << 32) | a02[1],
          (std::uint64_t{a13[2]} << 32) | a02[2],
          (std::uint64_t{a13[3]} << 32) | a02[3]};
#else
  const std::array<std::uint32_t, 4> a = philox4x32(ctr, key);
  ctr[2] += 1;
  const std::array<std::uint32_t, 4> b = philox4x32(ctr, key);
  return {(std::uint64_t{a[1]} << 32) | a[0],
          (std::uint64_t{a[3]} << 32) | a[2],
          (std::uint64_t{b[1]} << 32) | b[0],
          (std::uint64_t{b[3]} << 32) | b[2]};
#endif
}

/// The poisson() transform walks the exact CDF up to this mean and
/// switches to a rounded-normal approximation above it. The walk costs
/// O(mean) adds but consumes one uniform and is exact; at mean 30 the
/// normal approximation's total-variation error is already < 1.5% and
/// every simulator call site (scan counts) sits well below the cutoff.
inline constexpr double kPoissonInversionCutoffMean = 30.0;

/// Counter-based RNG stream: Philox4x32-10 keyed by a campaign seed,
/// addressed by (stream, lane). The simulator uses stream = device id
/// and lane = an encoding of (day | bin | setup), so every sample's
/// draws are reproducible from coordinates alone.
///
/// Draw methods mirror stats::Rng so call sites read identically; each
/// instance serves draws from successive counter slots of its lane.
class PhiloxRng {
 public:
  PhiloxRng(std::uint64_t seed, std::uint32_t stream,
            std::uint32_t lane) noexcept
      : key_(derive_key(seed)), stream_(stream), lane_(lane) {}

  /// The Philox key words for a campaign seed (splitmix64-mixed).
  /// Exposed so tests can reconstruct any stream's draws from raw
  /// philox4x32 block calls.
  [[nodiscard]] static std::array<std::uint32_t, 2> derive_key(
      std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    const std::uint64_t k = splitmix64(sm);
    return {static_cast<std::uint32_t>(k),
            static_cast<std::uint32_t>(k >> 32)};
  }

  /// Re-aims this instance at another (stream, lane) coordinate under
  /// the same key. The subsequent sequence is identical to a freshly
  /// constructed PhiloxRng(seed, stream, lane); hot loops that visit a
  /// lane per bin reseat one instance instead of re-deriving the key.
  void reseat(std::uint32_t stream, std::uint32_t lane) noexcept {
    stream_ = stream;
    lane_ = lane;
    slot_ = 0;
    pos_ = 0;
    filled_ = 0;
    has_spare_ = false;
  }

  [[nodiscard]] std::uint64_t next_u64() noexcept {
    if (pos_ == filled_) refill();
    return buf_[pos_++];
  }

  /// 32-bit counter output: two per u64 (low half first, high half
  /// stashed for the next call). u64 draws never touch the stash, so
  /// every sequence stays a pure function of the call sequence.
  [[nodiscard]] std::uint32_t next_u32() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    const std::uint64_t v = next_u64();
    spare_ = static_cast<std::uint32_t>(v >> 32);
    has_spare_ = true;
    return static_cast<std::uint32_t>(v);
  }

  /// Uniform double in [0, 1) at full 53-bit resolution. For
  /// calibration-grade transforms (normal/lognormal inverse CDFs).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1) — strictly interior, for inverse CDFs.
  [[nodiscard]] double uniform_open() noexcept {
    return (static_cast<double>(next_u64() >> 11) + 0.5) * 0x1.0p-53;
  }

  /// Uniform double in [0, 1) at 32-bit resolution — half the counter
  /// consumption of uniform(). The resolution floor (2^-32) is far below
  /// any probability the simulator compares against, so accept/reject
  /// decisions, table lookups and discrete CDF inversions draw here.
  [[nodiscard]] double uniform32() noexcept {
    return static_cast<double>(next_u32()) * 0x1.0p-32;
  }

  /// Uniform double in (0, 1) at 32-bit resolution.
  [[nodiscard]] double uniform32_open() noexcept {
    return (static_cast<double>(next_u32()) + 0.5) * 0x1.0p-32;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform double in [lo, hi) at 32-bit resolution.
  [[nodiscard]] double uniform32(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform32();
  }

  /// Uniform integer in [0, n). Requires 0 < n (and n far below 2^32:
  /// draws resolve 32 bits).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept {
    assert(n > 0);
    return static_cast<std::uint64_t>(uniform32() * static_cast<double>(n));
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform32() < p; }

  /// Standard normal via the inverse CDF (Acklam's rational
  /// approximation, |rel err| < 1.2e-9): one uniform in, one variate
  /// out, no cached state.
  [[nodiscard]] double normal() noexcept {
    return inverse_normal_cdf(uniform_open());
  }

  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Lognormal: exp(N(mu, sigma)). `mu`/`sigma` are in log space.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with rate lambda (mean 1/lambda).
  [[nodiscard]] double exponential(double lambda) noexcept {
    assert(lambda > 0);
    return -std::log(uniform_open()) / lambda;
  }

  /// Pareto (Type I) with scale xm > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept {
    assert(xm > 0 && alpha > 0);
    return xm / std::pow(uniform_open(), 1.0 / alpha);
  }

  /// Poisson count by CDF inversion: exact for mean <=
  /// kPoissonInversionCutoffMean, rounded normal above (see the cutoff
  /// constant's comment). One uniform either way.
  [[nodiscard]] unsigned poisson(double mean) noexcept {
    assert(mean >= 0);
    if (mean <= 0) return 0;
    if (mean > kPoissonInversionCutoffMean) {
      const double x = normal(mean, std::sqrt(mean));
      return x <= 0.5 ? 0u : static_cast<unsigned>(x + 0.5);
    }
    const double u = uniform32_open();
    double pmf = std::exp(-mean);
    double cdf = pmf;
    unsigned k = 0;
    // mean <= 30 puts the 1 - 1e-15 quantile far below 200; the bound
    // only guards against cdf stalling in the last few ulps.
    while (u > cdf && k < 200) {
      ++k;
      pmf *= mean / k;
      cdf += pmf;
    }
    return k;
  }

  /// Binomial(n, p) by CDF inversion — one uniform, O(np) adds. Used to
  /// thin scan counts (n <= 255) in one draw instead of n bernoullis.
  [[nodiscard]] unsigned binomial(unsigned n, double p) noexcept {
    if (n == 0 || p <= 0) return 0;
    if (p >= 1) return n;
    return binomial_pmf0(n, p, std::pow(1.0 - p, static_cast<double>(n)));
  }

  /// binomial() with the CDF walk's starting mass pmf0 supplied by the
  /// caller. pmf0 must equal std::pow(1.0 - p, double(n)) exactly — the
  /// simulator precomputes those powers per scenario (p is fixed per
  /// dwell environment) so the per-bin std::pow disappears while every
  /// draw stays bit-identical to binomial(n, p).
  [[nodiscard]] unsigned binomial_pmf0(unsigned n, double p,
                                       double pmf0) noexcept {
    if (n == 0 || p <= 0) return 0;
    if (p >= 1) return n;
    const double u = uniform32_open();
    double pmf = pmf0;
    double cdf = pmf;
    const double odds = p / (1.0 - p);
    unsigned k = 0;
    while (u > cdf && k < n) {
      ++k;
      pmf *= odds * static_cast<double>(n - k + 1) / static_cast<double>(k);
      cdf += pmf;
    }
    return k;
  }

  /// Inverse standard-normal CDF, Acklam's rational approximation.
  /// Requires p in (0, 1); relative error < 1.2e-9 everywhere.
  [[nodiscard]] static double inverse_normal_cdf(double p) noexcept {
    assert(p > 0.0 && p < 1.0);
    constexpr double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
    constexpr double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
    constexpr double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
    constexpr double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;
    if (p < p_low) {
      const double q = std::sqrt(-2.0 * std::log(p));
      return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
             ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - p_low) {
      const double q = std::sqrt(-2.0 * std::log(1.0 - p));
      return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
               c[5]) /
             ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }

 private:
  /// Fixed ctr[3] tag separating tokyonet draw streams from any other
  /// Philox use of the same key ("toky").
  static constexpr std::uint32_t kDomainTag = 0x746F6B79u;

  /// Refill policy: one block per fill, on demand. Simulator lanes are
  /// short (a handful of draws per bin), so prefetching a second block
  /// via philox4x32_pair wastes a whole block whenever the lane stops on
  /// an odd block boundary — measured as a net loss on the campaign
  /// bench. The pair kernel stays available for bulk columnar fills
  /// where the draw count is known up front.
  void refill() noexcept {
    const std::array<std::uint32_t, 4> x =
        philox4x32({stream_, lane_, slot_, kDomainTag}, key_);
    buf_[0] = (std::uint64_t{x[1]} << 32) | x[0];
    buf_[1] = (std::uint64_t{x[3]} << 32) | x[2];
    filled_ = 2;
    slot_ += 1;
    pos_ = 0;
  }

  std::array<std::uint32_t, 2> key_{};
  std::uint32_t stream_ = 0;
  std::uint32_t lane_ = 0;
  std::uint32_t slot_ = 0;
  std::array<std::uint64_t, 4> buf_{};
  std::uint32_t pos_ = 0;
  std::uint32_t filled_ = 0;
  std::uint32_t spare_ = 0;
  bool has_spare_ = false;
};

/// Resumable Poisson sampler for a fixed mean, bit-identical to
/// PhiloxRng::poisson(mean) draw for draw.
///
/// The simulator draws scan counts with the same mean for every bin of a
/// dwell segment, so the exp(-mean) and the O(mean) CDF walk that
/// poisson() redoes per draw are instead computed once and memoized: the
/// partial sums are persisted (extended lazily, exactly as far as the
/// largest uniform seen requires) and each draw becomes a binary search
/// over the cached prefix. The recurrence, the comparison (first k with
/// u <= cdf[k]) and the k == 200 stall cap match poisson() term for
/// term, which is what makes the values — not just the distribution —
/// identical.
class PoissonCdfCache {
 public:
  PoissonCdfCache() = default;

  /// Re-targets the cache at a new mean; no transcendentals until the
  /// first draw (a segment with no scans pays nothing).
  void reset(double mean) noexcept {
    mean_ = mean;
    size_ = 0;
    started_ = false;
  }

  [[nodiscard]] double mean() const noexcept { return mean_; }

  [[nodiscard]] unsigned draw(PhiloxRng& rng) noexcept {
    if (mean_ <= 0) return 0;
    if (mean_ > kPoissonInversionCutoffMean) {
      if (!started_) {
        sd_ = std::sqrt(mean_);
        started_ = true;
      }
      const double x =
          mean_ + sd_ * PhiloxRng::inverse_normal_cdf(rng.uniform_open());
      return x <= 0.5 ? 0u : static_cast<unsigned>(x + 0.5);
    }
    const double u = rng.uniform32_open();
    if (!started_) {
      pmf_ = std::exp(-mean_);
      cdf_[0] = pmf_;
      size_ = 1;
      started_ = true;
    }
    if (u <= cdf_[size_ - 1]) {
      // Answer lies in the cached prefix: cdf_ is non-decreasing, so the
      // first entry >= u is exactly where poisson()'s walk would stop —
      // and that lower_bound index equals the count of entries strictly
      // below u, which the SIMD shim computes branch-free (the prefix is
      // a handful of elements; a binary search mispredicts every level).
      return static_cast<unsigned>(simd::count_less_f64(cdf_.data(), size_, u));
    }
    // Extend the walk (same recurrence as poisson()), persisting the new
    // partial sums for later draws.
    unsigned k = size_ - 1;
    double cdf = cdf_[size_ - 1];
    while (u > cdf && k < 200) {
      ++k;
      pmf_ *= mean_ / k;
      cdf += pmf_;
      if (size_ < cdf_.size()) cdf_[size_++] = cdf;
    }
    return k;
  }

 private:
  // poisson() caps its walk at k == 200, so at most 201 partial sums.
  std::array<double, 201> cdf_{};
  double mean_ = 0;
  double pmf_ = 0;
  double sd_ = 0;
  unsigned size_ = 0;
  bool started_ = false;
};

}  // namespace tokyonet::stats
