file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_assoc_duration.dir/bench_fig13_assoc_duration.cc.o"
  "CMakeFiles/bench_fig13_assoc_duration.dir/bench_fig13_assoc_duration.cc.o.d"
  "bench_fig13_assoc_duration"
  "bench_fig13_assoc_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_assoc_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
