#include "analysis/usertype.h"

namespace tokyonet::analysis {

void accumulate_user_type_counts(UserTypeCounts& counts,
                                 std::size_t n_devices,
                                 const std::vector<UserDay>& days,
                                 double idle_mb) {
  std::vector<double> cell_total(n_devices, 0.0);
  std::vector<double> wifi_total(n_devices, 0.0);

  for (const UserDay& d : days) {
    cell_total[value(d.device)] += d.cell_rx_mb + d.cell_tx_mb;
    wifi_total[value(d.device)] += d.wifi_rx_mb + d.wifi_tx_mb;
  }

  std::vector<bool> is_mixed(n_devices, false);
  for (std::size_t i = 0; i < n_devices; ++i) {
    const bool cell_active = cell_total[i] > idle_mb;
    const bool wifi_active = wifi_total[i] > idle_mb;
    if (!cell_active && !wifi_active) continue;
    ++counts.active;
    if (cell_active && !wifi_active) {
      ++counts.cell_intensive;
    } else if (wifi_active && !cell_active) {
      ++counts.wifi_intensive;
    } else {
      ++counts.mixed;
      is_mixed[i] = true;
    }
  }

  for (const UserDay& d : days) {
    if (!is_mixed[value(d.device)]) continue;
    if (d.cell_rx_mb + d.wifi_rx_mb <= 0) continue;
    ++counts.mixed_days;
    counts.mixed_above += d.wifi_rx_mb > d.cell_rx_mb;
  }
}

UserTypeStats user_type_stats_from_counts(const UserTypeCounts& counts) {
  UserTypeStats s;
  if (counts.active > 0) {
    const auto active = static_cast<double>(counts.active);
    s.cellular_intensive_frac =
        static_cast<double>(counts.cell_intensive) / active;
    s.wifi_intensive_frac = static_cast<double>(counts.wifi_intensive) / active;
    s.mixed_frac = static_cast<double>(counts.mixed) / active;
  }
  if (counts.mixed_days > 0) {
    s.mixed_above_diagonal_frac = static_cast<double>(counts.mixed_above) /
                                  static_cast<double>(counts.mixed_days);
  }
  return s;
}

UserTypeStats user_type_stats(const Dataset& ds,
                              const std::vector<UserDay>& days,
                              double idle_mb) {
  return user_type_stats(ds.devices.size(), days, idle_mb);
}

UserTypeStats user_type_stats(std::size_t n_devices,
                              const std::vector<UserDay>& days,
                              double idle_mb) {
  UserTypeCounts counts;
  accumulate_user_type_counts(counts, n_devices, days, idle_mb);
  return user_type_stats_from_counts(counts);
}

void accumulate_user_day_heatmap(stats::LogHist2d& h,
                                 const std::vector<UserDay>& days) {
  for (const UserDay& d : days) {
    if (d.cell_rx_mb <= 0 && d.wifi_rx_mb <= 0) continue;
    h.add(d.cell_rx_mb, d.wifi_rx_mb);
  }
}

stats::LogHist2d user_day_heatmap(const std::vector<UserDay>& days,
                                  int bins_per_decade) {
  stats::LogHist2d h(-2.0, 3.0, bins_per_decade);
  accumulate_user_day_heatmap(h, days);
  return h;
}

}  // namespace tokyonet::analysis
