#include "ingest/server.h"

#include <cstring>

#include "core/parallel.h"

namespace tokyonet::ingest {
namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// Universe-size ceiling for Begin frames; a header announcing more
/// devices or APs than this is treated as malformed rather than letting
/// one frame allocate per-entity state for billions of ids.
constexpr std::uint32_t kMaxUniverse = 1u << 24;

[[nodiscard]] bool validate_begin(const BeginPayload& info,
                                  std::string* error) {
  if (info.num_days < 1 ||
      info.num_days > 0xFFFFu / static_cast<std::uint32_t>(kBinsPerDay)) {
    *error = "Begin frame announces an invalid campaign length of " +
             std::to_string(info.num_days) + " days";
    return false;
  }
  if (info.start_month < 1 || info.start_month > 12 || info.start_day < 1 ||
      info.start_day > 31) {
    *error = "Begin frame announces an invalid start date";
    return false;
  }
  if (info.n_devices > kMaxUniverse || info.n_aps > kMaxUniverse) {
    *error = "Begin frame announces an implausibly large universe";
    return false;
  }
  return true;
}

}  // namespace

IngestServer::IngestServer(IngestConfig config) : config_(config) {
  if (config_.shards < 1) config_.shards = 1;
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity));
  }
}

IngestServer::~IngestServer() { shutdown(); }

std::unique_ptr<IngestServer::Session> IngestServer::connect() {
  sessions_opened_.fetch_add(1, kRelaxed);
  return std::unique_ptr<Session>(new Session(*this));
}

void IngestServer::shutdown() {
  {
    std::lock_guard<std::mutex> lk(init_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  for (std::unique_ptr<Shard>& shard : shards_) shard->queue.close();
  if (pump_.joinable()) pump_.join();
}

bool IngestServer::handle_begin(const BeginPayload& info,
                                std::string* error) {
  if (!validate_begin(info, error)) return false;

  std::lock_guard<std::mutex> lk(init_mu_);
  if (shut_down_) {
    *error = "server is shut down";
    return false;
  }
  if (begin_.has_value()) {
    if (std::memcmp(&*begin_, &info, sizeof(BeginPayload)) != 0) {
      *error =
          "Begin frame announces a different campaign than the stream "
          "in progress";
      return false;
    }
    return true;  // another session joining the same campaign
  }

  incremental_ = std::make_unique<analysis::IncrementalAnalysis>(
      Date{info.start_year, static_cast<int>(info.start_month),
           static_cast<int>(info.start_day)},
      static_cast<int>(info.num_days), info.n_devices, info.n_aps,
      config_.shards);
  const std::size_t per_shard =
      (info.n_devices + static_cast<std::uint32_t>(config_.shards) - 1) /
      static_cast<std::uint32_t>(config_.shards);
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->ranges.assign(per_shard, {});
  }
  begin_ = info;

  // One long-lived pool batch hosts all shard workers: with n ==
  // max_threads every participant's first index claim is distinct, so
  // each worker loop gets its own thread for the stream's lifetime.
  pump_ = std::thread([this] {
    core::ThreadPool::global(config_.shards)
        .for_each(static_cast<std::size_t>(config_.shards), config_.shards,
                  [this](std::size_t i) {
                    worker_loop(static_cast<int>(i));
                  });
  });
  return true;
}

bool IngestServer::route(Batch batch, std::string* error) {
  Shard& shard =
      *shards_[value(batch.device) % static_cast<std::uint32_t>(
                                         config_.shards)];
  const std::uint64_t n_records = batch.samples.size();
  if (config_.shed_on_overflow) {
    if (!shard.queue.try_push(std::move(batch))) {
      batches_shed_.fetch_add(1, kRelaxed);
      records_shed_.fetch_add(n_records, kRelaxed);
    }
    return true;  // shedding is not a session error
  }
  if (!shard.queue.push(std::move(batch))) {
    *error = "server shut down while the stream was in flight";
    return false;
  }
  return true;
}

void IngestServer::worker_loop(int shard_index) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  while (std::optional<Batch> batch = shard.queue.pop()) {
    incremental_->add_batch(shard_index, batch->device, batch->samples,
                            batch->app);
    commit(shard_index, *batch);
    batches_committed_.fetch_add(1, kRelaxed);
    records_committed_.fetch_add(batch->samples.size(), kRelaxed);
    app_records_committed_.fetch_add(batch->app.size(), kRelaxed);
  }
}

void IngestServer::commit(int shard_index, Batch& batch) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  std::lock_guard<std::mutex> lk(shard.mu);
  const std::uint64_t sample_base = shard.samples.size();
  const std::uint64_t app_base = shard.app.size();
  // Rebase frame-local app references to shard storage; empty samples
  // keep their producer-side offset verbatim (frame.h), which is what
  // makes collect() byte-exact.
  for (Sample& s : batch.samples) {
    if (s.app_count > 0) {
      s.app_begin = static_cast<std::uint32_t>(app_base + s.app_begin);
    }
  }
  shard.samples.insert(shard.samples.cend(), batch.samples.begin(),
                       batch.samples.end());
  shard.app.insert(shard.app.cend(), batch.app.begin(), batch.app.end());
  const std::size_t local =
      value(batch.device) / static_cast<std::uint32_t>(config_.shards);
  shard.ranges[local].emplace_back(
      sample_base, static_cast<std::uint32_t>(batch.samples.size()));
}

IngestCounters IngestServer::counters() const {
  IngestCounters c;
  c.sessions_opened = sessions_opened_.load(kRelaxed);
  c.sessions_closed = sessions_closed_.load(kRelaxed);
  c.sessions_failed = sessions_failed_.load(kRelaxed);
  c.frames_accepted = frames_accepted_.load(kRelaxed);
  c.frames_rejected = frames_rejected_.load(kRelaxed);
  c.bytes_received = bytes_received_.load(kRelaxed);
  c.batches_committed = batches_committed_.load(kRelaxed);
  c.records_committed = records_committed_.load(kRelaxed);
  c.app_records_committed = app_records_committed_.load(kRelaxed);
  c.batches_shed = batches_shed_.load(kRelaxed);
  c.records_shed = records_shed_.load(kRelaxed);
  return c;
}

std::optional<BeginPayload> IngestServer::campaign() const {
  std::lock_guard<std::mutex> lk(init_mu_);
  return begin_;
}

analysis::StreamResult IngestServer::result() const {
  {
    std::lock_guard<std::mutex> lk(init_mu_);
    if (!incremental_) return {};
  }
  return incremental_->result();
}

IngestServer::CommittedStream IngestServer::collect() const {
  CommittedStream out;
  std::optional<BeginPayload> info = campaign();
  if (!info.has_value()) return out;

  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    locks.emplace_back(shard->mu);
  }

  const auto shards = static_cast<std::uint32_t>(config_.shards);
  for (std::uint32_t d = 0; d < info->n_devices; ++d) {
    const Shard& shard = *shards_[d % shards];
    for (const auto& [offset, count] : shard.ranges[d / shards]) {
      for (std::uint32_t i = 0; i < count; ++i) {
        Sample s = shard.samples[offset + i];
        if (s.app_count > 0) {
          const Sample& stored = shard.samples[offset + i];
          const std::uint32_t base =
              static_cast<std::uint32_t>(out.app_traffic.size());
          out.app_traffic.insert(
              out.app_traffic.end(), shard.app.data() + stored.app_begin,
              shard.app.data() + stored.app_begin + stored.app_count);
          s.app_begin = base;
        }
        out.samples.push_back(s);
      }
    }
  }
  return out;
}

// --- Session ------------------------------------------------------------

IngestServer::Session::~Session() {
  if (!settled_) {
    error_ = "session destroyed without finish()";
    settle(/*clean=*/false);
  }
}

void IngestServer::Session::settle(bool clean) {
  if (settled_) return;
  settled_ = true;
  if (clean) {
    server_->sessions_closed_.fetch_add(1, kRelaxed);
  } else {
    server_->sessions_failed_.fetch_add(1, kRelaxed);
  }
}

bool IngestServer::Session::fail(std::string what) {
  if (!failed_) {
    failed_ = true;
    error_ = std::move(what);
    settle(/*clean=*/false);
  }
  return false;
}

bool IngestServer::Session::feed(std::span<const std::uint8_t> bytes) {
  if (failed_) return false;
  server_->bytes_received_.fetch_add(bytes.size(), kRelaxed);
  parser_.feed(bytes);
  for (;;) {
    Frame frame;
    switch (parser_.next(frame)) {
      case FrameParser::Status::Frame:
        if (!on_frame(frame)) return false;
        break;
      case FrameParser::Status::NeedMore:
        return true;
      case FrameParser::Status::Error:
        server_->frames_rejected_.fetch_add(1, kRelaxed);
        return fail(parser_.error());
    }
  }
}

bool IngestServer::Session::on_frame(const Frame& frame) {
  // Any rule violation from here on is a *session* error: the frame
  // decoded, but breaks the stream protocol or the announced universe.
  const auto reject = [&](std::string what) {
    server_->frames_rejected_.fetch_add(1, kRelaxed);
    return fail(std::move(what));
  };

  if (ended_) return reject("frame after End");
  switch (frame.type) {
    case FrameType::Begin: {
      if (begun_) return reject("duplicate Begin frame");
      std::string error;
      if (!server_->handle_begin(frame.begin, &error)) {
        return reject(std::move(error));
      }
      campaign_ = frame.begin;
      begun_ = true;
      break;
    }
    case FrameType::Records: {
      if (!begun_) return reject("Records frame before Begin");
      if (value(frame.device) >= campaign_.n_devices) {
        return reject("Records frame for device " +
                      std::to_string(value(frame.device)) +
                      " outside the announced universe of " +
                      std::to_string(campaign_.n_devices));
      }
      const std::uint32_t num_bins = campaign_.num_days * kBinsPerDay;
      for (std::size_t i = 0; i < frame.samples.size(); ++i) {
        const Sample& s = frame.samples[i];
        if (s.bin >= num_bins) {
          return reject("sample " + std::to_string(i) + " at bin " +
                        std::to_string(s.bin) +
                        " outside the announced campaign of " +
                        std::to_string(num_bins) + " bins");
        }
        if (s.ap != kNoAp && value(s.ap) >= campaign_.n_aps) {
          return reject("sample " + std::to_string(i) +
                        " references AP " + std::to_string(value(s.ap)) +
                        " outside the announced universe of " +
                        std::to_string(campaign_.n_aps));
        }
      }
      Batch batch;
      batch.device = frame.device;
      batch.samples.assign(frame.samples.begin(), frame.samples.end());
      batch.app.assign(frame.app.begin(), frame.app.end());
      std::string error;
      if (!server_->route(std::move(batch), &error)) {
        return fail(std::move(error));
      }
      break;
    }
    case FrameType::End:
      if (!begun_) return reject("End frame before Begin");
      ended_ = true;
      break;
  }
  server_->frames_accepted_.fetch_add(1, kRelaxed);
  return true;
}

bool IngestServer::Session::finish() {
  if (failed_) return false;
  if (!begun_) return fail("connection closed before Begin");
  if (!ended_) return fail("connection closed before End");
  if (parser_.pending_bytes() > 0) {
    return fail("trailing bytes after the last complete frame");
  }
  settle(/*clean=*/true);
  return true;
}

}  // namespace tokyonet::ingest
