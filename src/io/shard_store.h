// Sharded campaign store: a snapshot split into fixed device ranges so
// million-user campaigns stream to disk and back with bounded memory.
//
// A shard directory looks like:
//
//   <dir>/
//     MANIFEST.tks       text manifest, written last (tmp + rename)
//     universe.tksnap    snapshot holding only the AP universe
//     shard-0000.tksnap  snapshot of devices [0, n0)       (local ids)
//     shard-0001.tksnap  snapshot of devices [n0, n0+n1)   (local ids)
//     ...
//
// Each shard is an ordinary PR 2-format snapshot (io/snapshot.h) of a
// contiguous device range: its device ids, survey rows, ground truth
// and Sample::app_begin offsets are all *local* to the shard, so every
// shard is independently checksummed, mmappable and SoA-indexable. The
// one thing a shard omits is the AP universe — samples reference APs by
// global id, and the universe lives once in universe.tksnap instead of
// being duplicated per shard.
//
// The manifest records the store version, the scenario hash, campaign
// frame, global totals, and one line per shard with its device range,
// sizes and snapshot header checksum; a trailing whole-manifest
// checksum closes the file. Because the manifest is written only after
// every shard file is durably in place (and itself via tmp + rename), a
// writer killed mid-stream leaves a directory without MANIFEST.tks —
// detected and rejected, never half-read.
//
// ShardedDataset is the reader: it verifies the manifest and every
// shard's identity up front, keeps the universe resident (it is tiny
// next to the samples), and then serves shards one at a time —
// load_shard() materializes a single fully-validated, indexed Dataset
// per call, which is the out-of-core analysis contract: per-device
// kernels run shard by shard and their partials reduce in shard (=
// device) order, byte-identical to the in-memory run (DESIGN.md §5i).
// materialize() concatenates every shard back into one in-memory
// Dataset equal to what the one-shot simulator produces: every field
// value, and the packed sample column byte for byte (struct padding in
// the small record arrays is the one thing not pinned — see
// tests/shard_store_test.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/records.h"
#include "io/snapshot.h"

namespace tokyonet::io {

/// Bump on any change to the manifest grammar or directory layout.
inline constexpr std::uint32_t kShardStoreVersion = 1;

/// Manifest file name inside a shard directory.
inline constexpr const char* kShardManifestName = "MANIFEST.tks";

/// One shard's manifest entry.
struct ShardEntry {
  std::uint32_t index = 0;
  std::string file;  // file name relative to the directory
  std::uint64_t device_begin = 0;
  std::uint64_t device_count = 0;
  std::uint64_t n_samples = 0;
  std::uint64_t n_app_traffic = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t header_checksum = 0;  // SnapshotInfo::header_checksum
};

/// Parsed manifest of a shard directory.
struct ShardManifest {
  std::uint32_t version = kShardStoreVersion;
  std::uint32_t snapshot_version = 0;
  int year = 0;  // calendar year, 2013..2015
  Date start{};
  int num_days = 0;
  std::uint64_t scenario_hash = 0;
  std::uint64_t n_devices = 0;
  std::uint64_t n_aps = 0;
  std::uint64_t n_samples = 0;
  std::uint64_t n_app_traffic = 0;
  std::string universe_file;
  std::uint64_t universe_bytes = 0;
  std::uint64_t universe_checksum = 0;  // universe header checksum
  std::vector<ShardEntry> shards;
};

/// True when `dir` looks like a shard directory (has MANIFEST.tks).
[[nodiscard]] bool is_shard_dir(const std::filesystem::path& dir);

/// Writes `m` as <dir>/MANIFEST.tks atomically (tmp + rename). Call
/// only after every referenced file is in place: the manifest's
/// existence is the directory's commit record.
[[nodiscard]] SnapshotResult write_shard_manifest(
    const ShardManifest& m, const std::filesystem::path& dir);

/// Reads, checksum-verifies and structurally validates
/// <dir>/MANIFEST.tks: version, totals consistent with the entries, and
/// shard device ranges sorted, non-overlapping and covering exactly
/// [0, n_devices). Does not touch the shard files themselves.
[[nodiscard]] SnapshotResult read_shard_manifest(
    const std::filesystem::path& dir, ShardManifest& out);

/// Verifies every file the manifest references against it: existence,
/// byte size, snapshot header checksum, device count, campaign frame
/// and scenario hash. Header-only reads — section payloads are
/// checksum-verified later, when a shard is actually loaded.
[[nodiscard]] SnapshotResult verify_shard_store(
    const std::filesystem::path& dir, const ShardManifest& m);

class ShardedDataset {
 public:
  /// Opens `dir`: manifest read + full verify_shard_store(), then loads
  /// the AP universe into memory. On success `out` serves shards.
  [[nodiscard]] static SnapshotResult open(const std::filesystem::path& dir,
                                           ShardedDataset& out,
                                           const SnapshotLoadOptions& opts = {});

  [[nodiscard]] const ShardManifest& manifest() const noexcept {
    return manifest_;
  }
  [[nodiscard]] std::size_t num_shards() const noexcept {
    return manifest_.shards.size();
  }
  /// Global device index of shard `i`'s first device.
  [[nodiscard]] std::size_t device_begin(std::size_t i) const noexcept {
    return static_cast<std::size_t>(manifest_.shards[i].device_begin);
  }

  /// The resident AP universe and campaign frame (valid after open()).
  [[nodiscard]] const std::vector<ApInfo>& universe_aps() const noexcept {
    return aps_;
  }
  [[nodiscard]] Year year() const noexcept { return year_; }
  [[nodiscard]] const CampaignCalendar& calendar() const noexcept {
    return calendar_;
  }

  /// Loads shard `i` as a self-contained Dataset: the shard file is
  /// checksum-verified (mmapped when possible), the shared AP universe
  /// is copied in, and the result is validated and indexed. Device ids
  /// are shard-local; add device_begin(i) to rebase. Only the returned
  /// dataset's samples are resident — dropping it before loading the
  /// next shard keeps memory bounded by one shard.
  [[nodiscard]] SnapshotResult load_shard(std::size_t i, Dataset& out,
                                          const SnapshotLoadOptions& opts = {});

  /// Concatenates every shard into one in-memory Dataset with global
  /// device ids and rebased app-traffic offsets — value-identical to
  /// the in-memory simulation the store was streamed from (and
  /// byte-identical in the packed sample column).
  [[nodiscard]] SnapshotResult materialize(Dataset& out,
                                           const SnapshotLoadOptions& opts = {});

 private:
  std::filesystem::path dir_;
  ShardManifest manifest_;
  // The resident universe (small next to any shard's samples).
  std::vector<ApInfo> aps_;
  std::vector<ApTruth> truth_aps_;
  Year year_ = Year::Y2015;
  CampaignCalendar calendar_;
};

}  // namespace tokyonet::io
