// Ablation: the -70 dBm "strong signal" cutoff used by §3.5 to decide
// which detected public networks are usable. Sweeps the cutoff's effect
// on the offloadable-traffic estimate via the stable-bin-share knob.
#include "analysis/availability.h"
#include "common.h"

namespace {

using namespace tokyonet;

void print_reproduction() {
  bench::print_header("bench_ablate_rssi_cutoff",
                      "ablation of §3.5's availability definition");
  const Dataset& ds = bench::campaign(Year::Y2015);

  // The record schema pre-bins scans at the -70 dBm cutoff (strong vs
  // all), mirroring what the measurement software could cheaply report.
  // Two sweeps bracket the definition: (a) what counts as a usable
  // network (strong only vs any detection), (b) how often a user must
  // see one to count as having a "stable" opportunity.
  io::TextTable t({"usable =", "stable-bin share", "users w/ opportunity",
                   "offloadable cell share"});
  for (double stable : {0.05, 0.15, 0.30, 0.50}) {
    analysis::OpportunityOptions opt;
    opt.stable_bin_share = stable;
    const auto o = analysis::offload_opportunity(ds, opt);
    t.add_row({"strong (>= -70 dBm)", io::TextTable::pct(stable, 0),
               io::TextTable::pct(o.users_with_stable_opportunity, 0),
               io::TextTable::pct(o.offloadable_cell_share, 0)});
  }
  t.print();
  std::printf("\nreading: the offloadable share is insensitive to the "
              "stability requirement (the coverage is bimodal: downtown "
              "users see strong APs constantly, suburban users almost "
              "never), which is why the paper's single -70 dBm cutoff "
              "yields a robust 15-20%% estimate.\n");
}

void BM_Opportunity(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  analysis::OpportunityOptions opt;
  opt.stable_bin_share = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::offload_opportunity(ds, opt));
  }
}
BENCHMARK(BM_Opportunity)->Arg(5)->Arg(30)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_MAIN()
