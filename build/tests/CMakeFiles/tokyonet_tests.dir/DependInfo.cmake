
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregate_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/aggregate_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/aggregate_test.cc.o.d"
  "/root/repo/tests/apps_cap_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/apps_cap_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/apps_cap_test.cc.o.d"
  "/root/repo/tests/battery_tether_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/battery_tether_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/battery_tether_test.cc.o.d"
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/cellular_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/cellular_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/cellular_test.cc.o.d"
  "/root/repo/tests/claims_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/claims_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/claims_test.cc.o.d"
  "/root/repo/tests/classify_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/classify_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/classify_test.cc.o.d"
  "/root/repo/tests/clock_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/clock_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/clock_test.cc.o.d"
  "/root/repo/tests/deployment_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/deployment_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/deployment_test.cc.o.d"
  "/root/repo/tests/descriptive_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/descriptive_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/descriptive_test.cc.o.d"
  "/root/repo/tests/distribution_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/distribution_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/distribution_test.cc.o.d"
  "/root/repo/tests/geo_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/geo_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/geo_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/population_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/population_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/population_test.cc.o.d"
  "/root/repo/tests/quality_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/quality_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/quality_test.cc.o.d"
  "/root/repo/tests/ratios_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/ratios_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/ratios_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/scenario_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/scenario_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/scenario_test.cc.o.d"
  "/root/repo/tests/schedule_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/schedule_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/schedule_test.cc.o.d"
  "/root/repo/tests/sharedap_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/sharedap_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/sharedap_test.cc.o.d"
  "/root/repo/tests/simulator_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/simulator_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/simulator_test.cc.o.d"
  "/root/repo/tests/update_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/update_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/update_test.cc.o.d"
  "/root/repo/tests/volumes_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/volumes_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/volumes_test.cc.o.d"
  "/root/repo/tests/wifiusage_test.cc" "tests/CMakeFiles/tokyonet_tests.dir/wifiusage_test.cc.o" "gcc" "tests/CMakeFiles/tokyonet_tests.dir/wifiusage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tokyonet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
