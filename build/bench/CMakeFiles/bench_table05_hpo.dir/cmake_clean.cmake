file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_hpo.dir/bench_table05_hpo.cc.o"
  "CMakeFiles/bench_table05_hpo.dir/bench_table05_hpo.cc.o.d"
  "bench_table05_hpo"
  "bench_table05_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
