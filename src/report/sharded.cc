#include "report/sharded.h"

#include <string_view>
#include <utility>

#include "analysis/sharded.h"
#include "report/battery.h"
#include "report/registry.h"

namespace tokyonet::report {
namespace {

// Mirror of Runner::run's metadata stamping, so canonical JSON from the
// out-of-core path compares byte-for-byte against the in-memory run.
Table stamp(Table t, std::string_view id, Year year) {
  const FigureSpec* spec = FigureRegistry::instance().find(id);
  t.id = spec != nullptr ? spec->id : std::string(id);
  if (spec != nullptr) {
    if (t.title.empty()) t.title = spec->title;
    if (t.paper_ref.empty()) t.paper_ref = spec->paper_ref;
  }
  t.year = year_number(year);
  return t;
}

}  // namespace

io::SnapshotResult run_sharded_battery(io::ShardedDataset& store,
                                       std::vector<Table>& out,
                                       const analysis::ShardedScanOptions& scan) {
  out.clear();
  analysis::ShardedContext ctx(store);
  if (io::SnapshotResult r = ctx.scan(scan); !r.ok()) return r;

  const Year year = ctx.year();
  out.push_back(
      stamp(render_table01(year, ctx.num_days(), ctx.overview()), "table01",
            year));

  const analysis::HourlySeries cell_rx = ctx.series(analysis::Stream::CellRx);
  const analysis::HourlySeries cell_tx = ctx.series(analysis::Stream::CellTx);
  const analysis::HourlySeries wifi_rx = ctx.series(analysis::Stream::WifiRx);
  const analysis::HourlySeries wifi_tx = ctx.series(analysis::Stream::WifiTx);
  const analysis::WeekSplit cell_split = analysis::weekday_weekend_split(
      cell_rx, ctx.calendar(), ctx.num_days());
  const analysis::WeekSplit wifi_split = analysis::weekday_weekend_split(
      wifi_rx, ctx.calendar(), ctx.num_days());
  out.push_back(stamp(render_fig02(ctx.calendar(), ctx.num_days(), cell_rx,
                                   cell_tx, wifi_rx, wifi_tx, cell_split,
                                   wifi_split),
                      "fig02", year));

  out.push_back(
      stamp(render_fig05(year, ctx.user_types(), ctx.heatmap()), "fig05",
            year));
  out.push_back(
      stamp(render_table04(year, ctx.classification()), "table04", year));
  out.push_back(
      stamp(render_sec35(year, ctx.offload()), "sec35_opportunity", year));
  if (year == Year::Y2015) {
    out.push_back(stamp(render_fig18(ctx.updates(), ctx.update_timing()),
                        "fig18", year));
  }
  return {};
}

}  // namespace tokyonet::report
