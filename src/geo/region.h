// The simulated Greater Tokyo region: grid + city anchors + density
// mixtures for sampling home, office and public-space locations.
#pragma once

#include <span>

#include "geo/grid.h"
#include "stats/rng.h"

namespace tokyonet::geo {

/// Greater Tokyo as a mixture of Gaussian population anchors over a
/// 180 km x 150 km grid of 5 km cells. Anchor geometry approximates the
/// real relative positions of the ten cities labelled in the paper's
/// Fig 10 maps.
class TokyoRegion {
 public:
  TokyoRegion();

  [[nodiscard]] const Grid& grid() const noexcept { return grid_; }
  [[nodiscard]] std::span<const City> cities() const noexcept;

  /// Draws a residential location (home-weight mixture).
  [[nodiscard]] Point sample_home(stats::Rng& rng) const;
  /// Draws a workplace location (office-weight mixture; much more
  /// concentrated downtown).
  [[nodiscard]] Point sample_office(stats::Rng& rng) const;
  /// Draws a public-space location (cafes, stations, streets): a blend of
  /// the office mixture (downtown hotspots) and the home mixture
  /// (suburban stations/shops).
  [[nodiscard]] Point sample_public_spot(stats::Rng& rng) const;

  /// Relative activity density of a cell in [0, 1]: how "downtown" it
  /// is. Drives public AP deployment density.
  [[nodiscard]] double downtown_factor(GeoCell cell) const noexcept;

  /// A point on the straight commute path between two points, at
  /// fraction t in [0, 1].
  [[nodiscard]] static Point along_path(Point from, Point to,
                                        double t) noexcept {
    return Point{from.x_km + t * (to.x_km - from.x_km),
                 from.y_km + t * (to.y_km - from.y_km)};
  }

 private:
  [[nodiscard]] Point sample_mixture(stats::Rng& rng, bool office) const;

  Grid grid_;
};

}  // namespace tokyonet::geo
