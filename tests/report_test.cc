// Tests for the report layer: the typed result model (Value/Table),
// the three emitters (text / CSV / canonical JSON), the figure
// registry's catalog invariants, and spot-check equivalence between
// registry renderings and the underlying analysis kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "analysis/classify.h"
#include "analysis/context.h"
#include "analysis/macro.h"
#include "analysis/volumes.h"
#include "core/records.h"
#include "report/golden.h"
#include "report/registry.h"
#include "report/runner.h"
#include "report/table.h"

namespace tokyonet::report {
namespace {

TEST(Value, RendersTextByKind) {
  EXPECT_EQ(Value().render_text(), "-");
  EXPECT_EQ(Value::text("abc").render_text(), "abc");
  EXPECT_EQ(Value::integer(-42).render_text(), "-42");
  EXPECT_EQ(Value::real(3.14159, 2).render_text(), "3.14");
  EXPECT_EQ(Value::pct(0.421, 1).render_text(), "42.1%");
}

TEST(Value, JsonEmitsRawScalars) {
  std::string out;
  Value::pct(0.5, 1).append_json(out);  // the raw fraction, not "50.0%"
  EXPECT_EQ(out, "0.5");
  out.clear();
  Value().append_json(out);
  EXPECT_EQ(out, "null");
  out.clear();
  Value::real(std::nan(""), 2).append_json(out);  // non-finite -> null
  EXPECT_EQ(out, "null");
  out.clear();
  Value::text("a\"b\\c\n").append_json(out);
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\"");
}

TEST(FormatDouble, ShortestFormRoundTrips) {
  const double cases[] = {0.1,     1.0 / 3.0, 57.9, 1e-12, -0.0001,
                          2.5e17,  123456789.123456};
  for (const double v : cases) {
    const std::string s = format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(Table, CanonicalJsonSortsKeysAndPinsRowLayout) {
  Table t({"name", "n"});
  t.id = "fig99";
  t.title = "a title";
  t.paper_ref = "Fig 99";
  t.year = 2015;
  t.notes.push_back("note 1");
  t.add_row({Value::text("a"), Value::integer(1)});
  const std::string json = to_canonical_json(t);

  // Object keys appear in sorted order, each on its own line.
  const char* keys[] = {"\"columns\"", "\"id\"",    "\"notes\"",
                        "\"paper_ref\"", "\"rows\"", "\"title\"",
                        "\"year\""};
  std::size_t pos = 0;
  for (const char* key : keys) {
    const std::size_t at = json.find(key, pos);
    ASSERT_NE(at, std::string::npos) << key;
    pos = at;
  }
  EXPECT_NE(json.find("[\"a\", 1]"), std::string::npos);
  EXPECT_NE(json.find("\"year\": 2015"), std::string::npos);

  // Longitudinal tables still carry the key, as null.
  t.year.reset();
  EXPECT_NE(to_canonical_json(t).find("\"year\": null"), std::string::npos);
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"a,b", "v"});
  t.add_row({Value::text("x\"y"), Value::real(0.5, 1)});
  EXPECT_EQ(to_csv(t), "\"a,b\",v\n\"x\"\"y\",0.5\n");
}

TEST(Registry, CatalogIsCompleteSortedAndUnique) {
  const FigureRegistry& r = FigureRegistry::instance();
  EXPECT_EQ(r.size(), 35u);
  std::string prev;
  for (const FigureSpec& spec : r.figures()) {
    EXPECT_LT(prev, spec.id);  // strictly increasing => sorted, unique
    prev = spec.id;
    EXPECT_NE(spec.fn, nullptr) << spec.id;
    EXPECT_FALSE(spec.title.empty()) << spec.id;
    EXPECT_FALSE(spec.paper_ref.empty()) << spec.id;
  }
  ASSERT_NE(r.find("fig06"), nullptr);
  EXPECT_TRUE(r.find("fig06")->applies_to(Year::Y2013));
  EXPECT_FALSE(r.find("fig06")->applies_to(Year::Y2014));
  EXPECT_EQ(r.find("no-such-figure"), nullptr);
}

TEST(Golden, FilenamesEncodeTheYear) {
  const FigureRegistry& r = FigureRegistry::instance();
  EXPECT_EQ(golden_filename(*r.find("fig06"), Year::Y2013),
            "fig06_2013.json");
  EXPECT_EQ(golden_filename(*r.find("fig01"), std::nullopt), "fig01.json");
}

// Spot-check that registry renderings carry exactly the numbers the
// analysis kernels produce (same memoized context, no drift between
// the figure layer and the kernels).
class RunnerEquivalence : public ::testing::Test {
 protected:
  static Runner& runner() {
    static Runner r([] {
      Runner::Options opt;
      opt.scale = 0.05;
      return opt;
    }());
    return r;
  }
};

TEST_F(RunnerEquivalence, Table01MatchesOverviewKernel) {
  const FigureSpec* spec = FigureRegistry::instance().find("table01");
  ASSERT_NE(spec, nullptr);
  const Table t = runner().run(*spec, Year::Y2015);
  const analysis::DatasetOverview ov =
      analysis::overview(runner().dataset(Year::Y2015));
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.at(0, 2).as_int(), ov.n_android);
  EXPECT_EQ(t.at(0, 3).as_int(), ov.n_ios);
  EXPECT_EQ(t.at(0, 4).as_int(), ov.n_android + ov.n_ios);
  EXPECT_EQ(t.at(0, 5).as_real(), ov.lte_traffic_share);
  EXPECT_EQ(t.year, 2015);
  EXPECT_EQ(t.id, "table01");
}

TEST_F(RunnerEquivalence, Table04MatchesClassifierCounts) {
  const FigureSpec* spec = FigureRegistry::instance().find("table04");
  ASSERT_NE(spec, nullptr);
  const Table t = runner().run(*spec, Year::Y2015);
  const analysis::ApClassification::Counts c =
      runner().analysis(Year::Y2015).classification().counts();
  ASSERT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.at(0, 2).as_int(), c.home);
  EXPECT_EQ(t.at(1, 2).as_int(), c.publik);
  EXPECT_EQ(t.at(2, 2).as_int(), c.other);
  EXPECT_EQ(t.at(4, 2).as_int(), c.total);
}

TEST_F(RunnerEquivalence, Fig01MatchesMacroGrowthSeries) {
  const FigureSpec* spec = FigureRegistry::instance().find("fig01");
  ASSERT_NE(spec, nullptr);
  const Table t = runner().run(*spec, std::nullopt);
  const auto series = analysis::macro_growth_series(1);
  ASSERT_EQ(t.num_rows(), series.size());
  EXPECT_EQ(t.at(0, 1).as_real(), series.front().rbb_gbps);
  EXPECT_EQ(t.at(series.size() - 1, 2).as_real(), series.back().cell_gbps);
  EXPECT_FALSE(t.year.has_value());
}

TEST_F(RunnerEquivalence, StackedRenderingIsByteStable) {
  const FigureSpec* spec = FigureRegistry::instance().find("table01");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(to_canonical_json(runner().run_stacked(*spec)),
            to_canonical_json(runner().run_stacked(*spec)));
}

TEST_F(RunnerEquivalence, PerYearMismatchThrows) {
  const FigureRegistry& r = FigureRegistry::instance();
  EXPECT_THROW((void)runner().run(*r.find("fig01"), Year::Y2015),
               std::invalid_argument);
  EXPECT_THROW((void)runner().run(*r.find("table01"), std::nullopt),
               std::invalid_argument);
}

}  // namespace
}  // namespace tokyonet::report
