// Fig 9: ratio of Android users by WiFi interface state (user / off /
// available) in 2013 and 2015, plus the iOS WiFi-user curves.
#include "analysis/wifistate.h"
#include "common.h"

namespace {

using namespace tokyonet;

void print_reproduction() {
  bench::print_header("bench_fig09_wifi_state",
                      "Fig 9 (WiFi interface states by OS)");
  static const char* kDays[] = {"Sat", "Sun", "Mon", "Tue", "Wed", "Thu", "Fri"};
  const analysis::WifiStateProfiles p13 =
      analysis::compute_wifi_states(bench::campaign(Year::Y2013));
  const analysis::WifiStateProfiles p15 =
      analysis::compute_wifi_states(bench::campaign(Year::Y2015));

  io::TextTable t({"day", "hour", "user'13", "off'13", "avail'13", "user'15",
                   "off'15", "avail'15", "iOS'13", "iOS'15"});
  const auto u13 = p13.android_user.ratio_series();
  const auto o13 = p13.android_off.ratio_series();
  const auto a13 = p13.android_available.ratio_series();
  const auto u15 = p15.android_user.ratio_series();
  const auto o15 = p15.android_off.ratio_series();
  const auto a15 = p15.android_available.ratio_series();
  const auto i13 = p13.ios_user.ratio_series();
  const auto i15 = p15.ios_user.ratio_series();
  for (int d = 0; d < 7; ++d) {
    for (int h = 0; h < 24; h += 6) {
      const auto i = static_cast<std::size_t>(d * 24 + h);
      t.add_row({kDays[d], std::to_string(h) + ":00",
                 io::TextTable::num(u13[i], 2), io::TextTable::num(o13[i], 2),
                 io::TextTable::num(a13[i], 2), io::TextTable::num(u15[i], 2),
                 io::TextTable::num(o15[i], 2), io::TextTable::num(a15[i], 2),
                 io::TextTable::num(i13[i], 2), io::TextTable::num(i15[i], 2)});
    }
  }
  t.print();
  std::printf("\nmean Android WiFi-off: %.2f (2013) -> %.2f (2015)"
              "   [paper: daytime 50%% -> 40%%]\n",
              p13.mean_android_off(), p15.mean_android_off());
  std::printf("mean Android WiFi-available: %.2f / %.2f   [paper ~0.25]\n",
              p13.mean_android_available(), p15.mean_android_available());
  std::printf("iOS vs Android WiFi-user (2015): %.2f vs %.2f"
              "   [paper: iOS ~30%% higher]\n",
              p15.ios_user.mean_ratio(), p15.android_user.mean_ratio());
  const auto carriers =
      analysis::ios_wifi_user_by_carrier(bench::campaign(Year::Y2015));
  std::printf("iOS WiFi-user share by carrier: %.2f / %.2f / %.2f"
              "   [paper: no carrier difference]\n",
              carriers[0], carriers[1], carriers[2]);
}

void BM_WifiStates(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compute_wifi_states(ds));
  }
}
BENCHMARK(BM_WifiStates)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_MAIN()
