#include "analysis/apps.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "analysis/query/scan.h"
#include "analysis/query/source.h"
#include "core/dataset_index.h"

namespace tokyonet::analysis {

std::string_view to_string(AppContext c) noexcept {
  switch (c) {
    case AppContext::CellHome: return "Cell home";
    case AppContext::CellOther: return "Cell other";
    case AppContext::WifiHome: return "WiFi home";
    case AppContext::WifiPublic: return "WiFi public";
  }
  return "?";
}

std::vector<AppBreakdown::Entry> AppBreakdown::top(AppContext context,
                                                   bool rx, int n) const {
  const auto& shares =
      (rx ? rx_share : tx_share)[static_cast<std::size_t>(context)];
  std::vector<Entry> entries;
  for (int c = 0; c < kNumAppCategories; ++c) {
    if (shares[static_cast<std::size_t>(c)] > 0) {
      entries.push_back(
          {static_cast<AppCategory>(c), shares[static_cast<std::size_t>(c)]});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.share > b.share; });
  if (static_cast<int>(entries.size()) > n) entries.resize(static_cast<std::size_t>(n));
  return entries;
}

namespace {

// Exact u64 byte sums per (context, category) behind app_breakdown().
// `home_cells` and `include_day` are campaign-wide tables (global
// device indices); `base` rebases this block's local device ids into
// them, so shard partials merge byte-identically.
using AppSums =
    std::array<std::array<std::uint64_t, kNumAppCategories>, kNumAppContexts>;

struct AppPartial {
  AppSums rx{}, tx{};

  void merge(const AppPartial& p) noexcept {
    for (std::size_t ctx = 0; ctx < kNumAppContexts; ++ctx) {
      for (std::size_t c = 0;
           c < static_cast<std::size_t>(kNumAppCategories); ++c) {
        rx[ctx][c] += p.rx[ctx][c];
        tx[ctx][c] += p.tx[ctx][c];
      }
    }
  }
};

[[nodiscard]] AppPartial app_breakdown_sums(
    const Dataset& ds, const ApClassification& cls,
    const std::vector<GeoCell>& home_cells,
    const std::vector<bool>& include_day, bool light_users_only,
    std::size_t base) {
  AppPartial out;
  const auto num_days = static_cast<std::size_t>(ds.num_days());

  const core::DatasetIndex* idx = ds.index();
  if (idx == nullptr) {
    for (const Sample& s : ds.samples) {
      if (s.app_count == 0) continue;
      if (ds.devices[value(s.device)].os != Os::Android) continue;
      if (light_users_only &&
          !include_day[(base + value(s.device)) * num_days +
                       static_cast<std::size_t>(ds.calendar.day_of(s.bin))]) {
        continue;
      }

      AppContext ctx = AppContext::CellOther;
      if (s.wifi_state == WifiState::Associated && s.ap != kNoAp) {
        switch (cls.class_of(s.ap)) {
          case ApClass::Home: ctx = AppContext::WifiHome; break;
          case ApClass::Public: ctx = AppContext::WifiPublic; break;
          case ApClass::Other: continue;  // office/venue not tabulated
        }
      } else {
        const GeoCell home = home_cells[base + value(s.device)];
        ctx = (home != kNoGeoCell && s.geo_cell == home)
                  ? AppContext::CellHome
                  : AppContext::CellOther;
      }

      for (const AppTraffic& at : ds.apps_of(s)) {
        const auto c = static_cast<std::size_t>(at.category);
        out.rx[static_cast<std::size_t>(ctx)][c] += at.rx_bytes;
        out.tx[static_cast<std::size_t>(ctx)][c] += at.tx_bytes;
      }
    }
  } else {
    // Per-device-block partials over the index: the OS check hoists to
    // one test per device, the light-user day filter to whole per-day
    // ranges, and the hot loop strides SoA columns only — app_count
    // (u8), wifi_state (u8), ap (u32) and geo_cell (u16) — never the
    // 48-byte AoS array. A sample's app records sit at a running
    // cursor: records are appended in (device, bin) order, so starting
    // at device_app_begin(d) and consuming app_count per sample
    // recovers every sample's app range without reading Sample::
    // app_begin. All sums are u64 over u32 values, so the block
    // reduction is byte-identical to the serial scan at any thread
    // count.
    const std::span<const std::uint8_t> acnt = idx->app_count();
    const std::span<const WifiState> state = idx->wifi_state();
    const std::span<const std::uint32_t> apcol = idx->ap();
    const std::span<const std::uint16_t> geo = idx->geo_cell();
    const std::span<const AppTraffic> apps = ds.app_traffic.span();
    const std::size_t n_devices = ds.devices.size();
    const int days_total = ds.num_days();
    const std::vector<AppPartial> partials = query::map_device_blocks(
        n_devices, [&](std::size_t d0, std::size_t d1) {
          AppPartial p;
          for (std::size_t d = d0; d < d1; ++d) {
            if (ds.devices[d].os != Os::Android) continue;
            const GeoCell home = home_cells[base + d];
            std::size_t cursor = idx->device_app_begin(d);
            // The app context is a pure function of (wifi_state, ap,
            // geo_cell), and devices dwell — those columns are constant
            // over long sample runs. Run-length-encode them and resolve
            // the context (AP-class gather and all) once per run; the
            // per-sample work inside a run is just the app_count byte
            // and the record loop.
            const auto scan_range = [&](std::size_t begin, std::size_t end) {
              std::size_t i = begin;
              while (i < end) {
                const std::uint32_t a = apcol[i];
                const std::uint16_t g = geo[i];
                const WifiState st = state[i];
                std::size_t j = i + 1;
                while (j < end && apcol[j] == a && geo[j] == g &&
                       state[j] == st) {
                  ++j;
                }

                AppContext ctx = AppContext::CellOther;
                bool tabulated = true;
                if (st == WifiState::Associated && a != value(kNoAp)) {
                  switch (cls.ap_class[a]) {
                    case ApClass::Home: ctx = AppContext::WifiHome; break;
                    case ApClass::Public: ctx = AppContext::WifiPublic; break;
                    case ApClass::Other: tabulated = false; break;
                  }
                } else {
                  ctx = (home != kNoGeoCell && g == home)
                            ? AppContext::CellHome
                            : AppContext::CellOther;
                }

                if (!tabulated) {  // office/venue: skip, keep cursor in sync
                  for (std::size_t k = i; k < j; ++k) cursor += acnt[k];
                  i = j;
                  continue;
                }
                // One context for the whole run means its records are
                // one contiguous range: sum the count bytes (vectorized)
                // and sweep the range in a single tight loop.
                std::size_t run_count = 0;
                for (std::size_t k = i; k < j; ++k) run_count += acnt[k];
#ifndef NDEBUG
                for (std::size_t k = i, dbg = cursor; k < j; ++k) {
                  if (acnt[k] != 0) {
                    assert(dbg == std::size_t{ds.samples[k].app_begin});
                  }
                  dbg += acnt[k];
                }
#endif
                const std::size_t a0 = cursor;
                cursor += run_count;
                auto& rx_row = p.rx[static_cast<std::size_t>(ctx)];
                auto& tx_row = p.tx[static_cast<std::size_t>(ctx)];
                for (std::size_t a2 = a0; a2 < a0 + run_count; ++a2) {
                  const auto c = static_cast<std::size_t>(apps[a2].category);
                  rx_row[c] += apps[a2].rx_bytes;
                  tx_row[c] += apps[a2].tx_bytes;
                }
                i = j;
              }
            };
            if (light_users_only) {
              for (int day = 0; day < days_total; ++day) {
                const std::size_t begin = idx->day_begin(d, day);
                const std::size_t end = idx->day_begin(d, day + 1);
                if (!include_day[(base + d) * num_days +
                                 static_cast<std::size_t>(day)]) {
                  // Keep the cursor in sync across excluded days.
                  for (std::size_t i = begin; i < end; ++i) cursor += acnt[i];
                  continue;
                }
                scan_range(begin, end);
              }
            } else {
              scan_range(idx->device_begin(d), idx->device_end(d));
            }
          }
          return p;
        });
    for (const AppPartial& p : partials) out.merge(p);
  }
  return out;
}

// The light-user (device, day) filter table over the *campaign-wide*
// device universe; empty unless filtering (UserDay carries global ids).
[[nodiscard]] std::vector<bool> light_day_table(
    std::size_t n_devices, std::size_t num_days,
    const AppBreakdownOptions& opt) {
  std::vector<bool> include_day;
  if (opt.light_users_only) {
    include_day.assign(n_devices * num_days, false);
    for (const UserDay& d : *opt.days) {
      include_day[value(d.device) * num_days +
                  static_cast<std::size_t>(d.day)] =
          opt.classes->classify(d) == UserClass::Light;
    }
  }
  return include_day;
}

// Normalizes the exact sums to per-context shares. Totals are summed in
// category order from the same integer operands the all-at-once scan
// produced, so shares match it bit-for-bit.
[[nodiscard]] AppBreakdown app_breakdown_finalize(const AppPartial& sums) {
  AppBreakdown out;
  for (std::size_t ctx = 0; ctx < kNumAppContexts; ++ctx) {
    double rx_total = 0, tx_total = 0;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(kNumAppCategories); ++c) {
      rx_total += static_cast<double>(sums.rx[ctx][c]);
      tx_total += static_cast<double>(sums.tx[ctx][c]);
    }
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(kNumAppCategories); ++c) {
      if (rx_total > 0) {
        out.rx_share[ctx][c] =
            static_cast<double>(sums.rx[ctx][c]) / rx_total;
      }
      if (tx_total > 0) {
        out.tx_share[ctx][c] =
            static_cast<double>(sums.tx[ctx][c]) / tx_total;
      }
    }
  }
  return out;
}

}  // namespace

AppBreakdown app_breakdown(const Dataset& ds, const ApClassification& cls,
                           const std::vector<GeoCell>& home_cells,
                           const AppBreakdownOptions& opt) {
  const std::vector<bool> include_day = light_day_table(
      ds.devices.size(), static_cast<std::size_t>(ds.num_days()), opt);
  return app_breakdown_finalize(app_breakdown_sums(
      ds, cls, home_cells, include_day, opt.light_users_only, 0));
}

AppBreakdown app_breakdown(const query::DataSource& src,
                           const ApClassification& cls,
                           const std::vector<GeoCell>& home_cells,
                           const AppBreakdownOptions& opt) {
  if (const Dataset* ds = src.dataset_or_null()) {
    return app_breakdown(*ds, cls, home_cells, opt);
  }
  const std::vector<bool> include_day = light_day_table(
      src.n_devices(), static_cast<std::size_t>(src.num_days()), opt);
  return app_breakdown_finalize(src.reduce<AppPartial>(
      [&](const Dataset& block, std::size_t base) {
        return app_breakdown_sums(block, cls, home_cells, include_day,
                                  opt.light_users_only, base);
      },
      [](AppPartial& acc, AppPartial&& p) { acc.merge(p); }));
}

}  // namespace tokyonet::analysis
