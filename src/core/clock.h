// Civil-calendar and simulation-clock utilities.
//
// The paper's measurement software samples device state every 10 minutes
// (§2); tokyonet therefore discretizes a campaign into 10-minute "bins".
// All wall-clock reasoning (diurnal peaks, weekday/weekend splits, the
// 22:00-06:00 home-inference window, peak-hour cap enforcement) is done
// in Japan Standard Time, which has no daylight-saving transitions —
// every day has exactly 144 bins.
#pragma once

#include <cstdint>
#include <string>

namespace tokyonet {

inline constexpr int kBinsPerHour = 6;
inline constexpr int kBinsPerDay = 24 * kBinsPerHour;  // 144
inline constexpr int kMinutesPerBin = 10;

/// Index of a 10-minute bin within one campaign (0 = first bin of day 0).
using TimeBin = std::uint16_t;

/// Day of week, ISO-style ordering starting from Monday.
enum class Weekday : std::uint8_t {
  Monday = 0,
  Tuesday,
  Wednesday,
  Thursday,
  Friday,
  Saturday,
  Sunday,
};

[[nodiscard]] std::string_view to_string(Weekday d) noexcept;

/// A civil (proleptic Gregorian) date.
struct Date {
  int year = 2015;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  friend constexpr bool operator==(const Date&, const Date&) = default;
};

/// Days since the civil epoch 1970-01-01 (negative before).
/// Howard Hinnant's "days_from_civil" algorithm.
[[nodiscard]] std::int64_t days_from_civil(const Date& d) noexcept;

/// Inverse of `days_from_civil`.
[[nodiscard]] Date civil_from_days(std::int64_t z) noexcept;

/// Day of week of a civil date.
[[nodiscard]] Weekday weekday_of(const Date& d) noexcept;

/// Calendar for one measurement campaign: a start date plus a length in
/// whole days. Maps 10-minute bins to wall-clock concepts.
class CampaignCalendar {
 public:
  CampaignCalendar() = default;

  /// Campaign starting at 00:00 JST on `start`, lasting `num_days` days.
  /// Requires num_days >= 1 and num_days * 144 <= 65535.
  CampaignCalendar(Date start, int num_days);

  [[nodiscard]] Date start_date() const noexcept { return start_; }
  [[nodiscard]] int num_days() const noexcept { return num_days_; }
  [[nodiscard]] int num_bins() const noexcept { return num_days_ * kBinsPerDay; }

  /// Day index (0-based) containing `bin`.
  [[nodiscard]] int day_of(TimeBin bin) const noexcept {
    return bin / kBinsPerDay;
  }
  /// Bin index within its day, 0..143.
  [[nodiscard]] int bin_in_day(TimeBin bin) const noexcept {
    return bin % kBinsPerDay;
  }
  /// Hour of day containing `bin`, 0..23.
  [[nodiscard]] int hour_of(TimeBin bin) const noexcept {
    return bin_in_day(bin) / kBinsPerHour;
  }
  /// Fractional hour of day (e.g. bin at 08:30 -> 8.5).
  [[nodiscard]] double fractional_hour_of(TimeBin bin) const noexcept {
    return static_cast<double>(bin_in_day(bin)) / kBinsPerHour;
  }

  [[nodiscard]] Date date_of_day(int day) const noexcept;
  [[nodiscard]] Weekday weekday_of_day(int day) const noexcept;
  [[nodiscard]] bool is_weekend_day(int day) const noexcept;
  [[nodiscard]] bool is_weekend(TimeBin bin) const noexcept {
    return is_weekend_day(day_of(bin));
  }

  /// True if `bin` falls in [from_hour, to_hour) of its local day,
  /// handling windows that wrap past midnight (e.g. 22 -> 6).
  [[nodiscard]] bool in_hour_window(TimeBin bin, int from_hour,
                                    int to_hour) const noexcept;

  /// First bin of `day`.
  [[nodiscard]] TimeBin first_bin_of_day(int day) const noexcept {
    return static_cast<TimeBin>(day * kBinsPerDay);
  }

  /// "28 Sat"-style label used on the paper's weekly x-axes.
  [[nodiscard]] std::string day_label(int day) const;

 private:
  Date start_{};
  int num_days_ = 0;
  Weekday start_weekday_ = Weekday::Monday;
};

}  // namespace tokyonet
