// Fig 3: CDFs of daily total traffic volume per user (RX and TX) for all
// three years.
#include "analysis/volumes.h"
#include "common.h"

namespace {

using namespace tokyonet;

void print_reproduction() {
  bench::print_header("bench_fig03_daily_total_cdf",
                      "Fig 3 (CDFs of daily total traffic per user)");
  io::TextTable t({"MB", "RX'13", "RX'14", "RX'15", "TX'13", "TX'14",
                   "TX'15"});
  analysis::DailyVolumeCdfs cdfs[kNumYears];
  for (Year y : kAllYears) {
    cdfs[static_cast<int>(y)] = analysis::daily_volume_cdfs(bench::days(y));
  }
  for (double mb : {1.0, 3.0, 10.0, 30.0, 57.9, 100.0, 300.0, 1000.0, 3000.0}) {
    std::vector<std::string> row{io::TextTable::num(mb, 1)};
    for (int y = 0; y < kNumYears; ++y) {
      row.push_back(io::TextTable::num(cdfs[y].all_rx.at(mb), 3));
    }
    for (int y = 0; y < kNumYears; ++y) {
      row.push_back(io::TextTable::num(cdfs[y].all_tx.at(mb), 3));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\nRX/TX median ratio 2015: %.1fx (paper: RX ~5x TX)\n",
              cdfs[2].all_rx.quantile(0.5) / cdfs[2].all_tx.quantile(0.5));
}

void BM_DailyCdfs(benchmark::State& state) {
  const auto& days = bench::days(Year::Y2015);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::daily_volume_cdfs(days));
  }
}
BENCHMARK(BM_DailyCdfs)->Unit(benchmark::kMillisecond);

void BM_UserDayRollup(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::user_days(ds));
  }
}
BENCHMARK(BM_UserDayRollup)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_MAIN()
