#include "io/shard_store.h"

#include <cerrno>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <span>
#include <string_view>
#include <system_error>
#include <thread>

#include "core/hash.h"

namespace tokyonet::io {
namespace {

namespace fs = std::filesystem;

/// Seed for the whole-manifest trailing checksum ("tkshard1").
constexpr std::uint64_t kManifestHashSeed = 0x746B736861726431ull;

[[nodiscard]] std::string dir_err(const fs::path& dir,
                                  const std::string& what) {
  return dir.string() + ": " + what;
}

void append_line(std::string& out, const char* fmt, auto... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
  out += '\n';
}

/// Renders the manifest body — everything the trailing checksum covers.
[[nodiscard]] std::string render_body(const ShardManifest& m) {
  std::string out;
  append_line(out, "tokyonet-shards %u", m.version);
  append_line(out, "snapshot_version %u", m.snapshot_version);
  append_line(out, "year %d", m.year);
  append_line(out, "start %04d-%02d-%02d", m.start.year, m.start.month,
              m.start.day);
  append_line(out, "num_days %d", m.num_days);
  append_line(out, "scenario_hash %016" PRIx64, m.scenario_hash);
  append_line(out, "devices %" PRIu64, m.n_devices);
  append_line(out, "aps %" PRIu64, m.n_aps);
  append_line(out, "samples %" PRIu64, m.n_samples);
  append_line(out, "app_traffic %" PRIu64, m.n_app_traffic);
  append_line(out, "universe %s %" PRIu64 " %016" PRIx64,
              m.universe_file.c_str(), m.universe_bytes, m.universe_checksum);
  append_line(out, "shards %zu", m.shards.size());
  for (const ShardEntry& s : m.shards) {
    append_line(out,
                "shard %u %s %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 " %016" PRIx64,
                s.index, s.file.c_str(), s.device_begin, s.device_count,
                s.n_samples, s.n_app_traffic, s.file_bytes, s.header_checksum);
  }
  return out;
}

/// Structural validation shared by read (always) — the writer is left
/// unchecked on purpose, so tests can produce malformed manifests.
[[nodiscard]] std::string check_manifest(const ShardManifest& m) {
  if (m.version != kShardStoreVersion) {
    return "unsupported shard-store version " + std::to_string(m.version) +
           " (this build reads " + std::to_string(kShardStoreVersion) + ")";
  }
  if (m.snapshot_version != kSnapshotVersion) {
    return "unsupported snapshot version " +
           std::to_string(m.snapshot_version) + " in manifest";
  }
  if (m.year < 2013 || m.year > 2015) {
    return "campaign year " + std::to_string(m.year) + " out of range";
  }
  if (m.num_days < 1) return "implausible calendar";
  if (m.universe_file.empty()) return "manifest names no universe file";
  if (m.shards.empty()) return "manifest lists no shards";

  std::uint64_t next_begin = 0, samples = 0, apps = 0;
  for (std::size_t i = 0; i < m.shards.size(); ++i) {
    const ShardEntry& s = m.shards[i];
    if (s.index != i) {
      return "shard entries out of order (entry " + std::to_string(i) +
             " has index " + std::to_string(s.index) + ")";
    }
    if (s.file.empty()) {
      return "shard " + std::to_string(i) + " names no file";
    }
    if (s.device_count == 0) {
      return "shard " + std::to_string(i) + " covers no devices";
    }
    if (s.device_begin != next_begin) {
      return "shard device ranges must be contiguous and non-overlapping: "
             "shard " +
             std::to_string(i) + " begins at " +
             std::to_string(s.device_begin) + ", expected " +
             std::to_string(next_begin);
    }
    next_begin += s.device_count;
    samples += s.n_samples;
    apps += s.n_app_traffic;
  }
  if (next_begin != m.n_devices) {
    return "shard device ranges cover " + std::to_string(next_begin) +
           " of " + std::to_string(m.n_devices) + " devices";
  }
  if (samples != m.n_samples) {
    return "shard sample counts sum to " + std::to_string(samples) +
           ", manifest says " + std::to_string(m.n_samples);
  }
  if (apps != m.n_app_traffic) {
    return "shard app-traffic counts sum to " + std::to_string(apps) +
           ", manifest says " + std::to_string(m.n_app_traffic);
  }
  return {};
}

}  // namespace

bool is_shard_dir(const fs::path& dir) {
  std::error_code ec;
  return fs::is_regular_file(dir / kShardManifestName, ec);
}

std::size_t resident_shards_from_env(std::size_t fallback) noexcept {
  const char* env = std::getenv("TOKYONET_RESIDENT_SHARDS");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return static_cast<std::size_t>(v);
}

SnapshotResult write_shard_manifest(const ShardManifest& m,
                                    const fs::path& dir) {
  SnapshotResult result;
  std::string text = render_body(m);
  const std::uint64_t checksum =
      core::hash_bytes(text.data(), text.size(), kManifestHashSeed);
  append_line(text, "checksum %016" PRIx64, checksum);

  const fs::path path = dir / kShardManifestName;
  const fs::path tmp = path.string() + ".tmp";
  std::FILE* f = std::fopen(tmp.string().c_str(), "wb");
  if (f == nullptr) {
    result.error = dir_err(tmp, std::strerror(errno));
    return result;
  }
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  std::error_code ec;
  if (!ok) {
    result.error = dir_err(tmp, "write failed");
    fs::remove(tmp, ec);
    return result;
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    result.error = dir_err(path, "rename failed: " + ec.message());
    fs::remove(tmp, ec);
  }
  return result;
}

SnapshotResult read_shard_manifest(const fs::path& dir, ShardManifest& out) {
  SnapshotResult result;
  out = ShardManifest{};
  out.version = 0;
  out.snapshot_version = 0;

  const fs::path path = dir / kShardManifestName;
  std::error_code ec;
  if (!fs::is_regular_file(path, ec)) {
    // The manifest is the directory's commit record: a streaming writer
    // killed mid-campaign leaves shard files but no manifest.
    result.error =
        dir_err(dir, "not a shard directory (no MANIFEST.tks; partial or "
                     "foreign directory)");
    return result;
  }

  std::string text;
  {
    std::FILE* f = std::fopen(path.string().c_str(), "rb");
    if (f == nullptr) {
      result.error = dir_err(path, std::strerror(errno));
      return result;
    }
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    const bool ok = std::feof(f) != 0;
    std::fclose(f);
    if (!ok || text.size() > (std::size_t{64} << 20)) {
      result.error = dir_err(path, "unreadable or implausibly large");
      return result;
    }
  }

  // Split off the trailing "checksum <hex>" line and verify the body.
  if (text.size() < 2 || text.back() != '\n') {
    result.error = dir_err(path, "missing trailing checksum line");
    return result;
  }
  const std::size_t last_nl = text.find_last_of('\n', text.size() - 2);
  const std::size_t body_end =
      last_nl == std::string::npos ? 0 : last_nl + 1;
  std::uint64_t stored = 0;
  if (std::sscanf(text.c_str() + body_end, "checksum %" SCNx64, &stored) != 1) {
    result.error = dir_err(path, "missing trailing checksum line");
    return result;
  }
  if (core::hash_bytes(text.data(), body_end, kManifestHashSeed) != stored) {
    result.error = dir_err(path, "manifest checksum mismatch (corrupted?)");
    return result;
  }

  // Line-by-line parse of the body.
  std::size_t pos = 0;
  std::uint64_t declared_shards = 0;
  bool have_shards_count = false;
  while (pos < body_end) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos || eol >= body_end) eol = body_end - 1;
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const char* c = line.c_str();
    char name[128];
    ShardEntry e;
    if (std::sscanf(c, "tokyonet-shards %u", &out.version) == 1 ||
        std::sscanf(c, "snapshot_version %u", &out.snapshot_version) == 1 ||
        std::sscanf(c, "year %d", &out.year) == 1 ||
        std::sscanf(c, "start %d-%d-%d", &out.start.year, &out.start.month,
                    &out.start.day) == 3 ||
        std::sscanf(c, "num_days %d", &out.num_days) == 1 ||
        std::sscanf(c, "scenario_hash %" SCNx64, &out.scenario_hash) == 1 ||
        std::sscanf(c, "devices %" SCNu64, &out.n_devices) == 1 ||
        std::sscanf(c, "aps %" SCNu64, &out.n_aps) == 1 ||
        std::sscanf(c, "samples %" SCNu64, &out.n_samples) == 1 ||
        std::sscanf(c, "app_traffic %" SCNu64, &out.n_app_traffic) == 1) {
      continue;
    }
    if (std::sscanf(c, "universe %127s %" SCNu64 " %" SCNx64, name,
                    &out.universe_bytes, &out.universe_checksum) == 3) {
      out.universe_file = name;
      continue;
    }
    if (std::sscanf(c, "shards %" SCNu64, &declared_shards) == 1) {
      have_shards_count = true;
      continue;
    }
    if (std::sscanf(c,
                    "shard %u %127s %" SCNu64 " %" SCNu64 " %" SCNu64
                    " %" SCNu64 " %" SCNu64 " %" SCNx64,
                    &e.index, name, &e.device_begin, &e.device_count,
                    &e.n_samples, &e.n_app_traffic, &e.file_bytes,
                    &e.header_checksum) == 8) {
      e.file = name;
      out.shards.push_back(std::move(e));
      continue;
    }
    result.error = dir_err(path, "unrecognized manifest line: " + line);
    return result;
  }

  if (!have_shards_count || declared_shards != out.shards.size()) {
    result.error = dir_err(
        path, "manifest declares " + std::to_string(declared_shards) +
                  " shards but lists " + std::to_string(out.shards.size()));
    return result;
  }
  const std::string invalid = check_manifest(out);
  if (!invalid.empty()) {
    result.error = dir_err(path, invalid);
    return result;
  }
  return result;
}

namespace {

/// Header-level identity check of one referenced snapshot file against
/// what the manifest recorded for it.
[[nodiscard]] std::string check_file(const fs::path& path,
                                     const ShardManifest& m,
                                     std::uint64_t expect_bytes,
                                     std::uint64_t expect_checksum,
                                     std::uint64_t expect_devices,
                                     bool is_universe) {
  std::error_code ec;
  if (!fs::is_regular_file(path, ec)) return "missing file";
  const std::uint64_t actual = fs::file_size(path, ec);
  if (ec) return "cannot stat: " + ec.message();
  if (actual != expect_bytes) {
    return "size mismatch: " + std::to_string(actual) + " bytes on disk, " +
           std::to_string(expect_bytes) + " in the manifest (truncated?)";
  }
  SnapshotInfo info;
  const SnapshotResult r = read_snapshot_info(path, info);
  if (!r.ok()) return r.error;
  if (info.scenario_hash != m.scenario_hash) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "scenario hash mismatch: file %016" PRIx64
                  ", manifest %016" PRIx64,
                  info.scenario_hash, m.scenario_hash);
    return buf;
  }
  if (info.header_checksum != expect_checksum) {
    return "snapshot header checksum does not match the manifest "
           "(swapped or regenerated file?)";
  }
  if (info.n_devices != expect_devices) {
    return "device count mismatch: file has " +
           std::to_string(info.n_devices) + ", manifest says " +
           std::to_string(expect_devices);
  }
  if (info.year != m.year || info.num_days != m.num_days ||
      info.start.year != m.start.year || info.start.month != m.start.month ||
      info.start.day != m.start.day) {
    return "campaign frame does not match the manifest";
  }
  if (is_universe && info.n_aps != m.n_aps) {
    return "universe AP count mismatch";
  }
  return {};
}

}  // namespace

SnapshotResult verify_shard_store(const fs::path& dir,
                                  const ShardManifest& m) {
  SnapshotResult result;
  {
    const fs::path p = dir / m.universe_file;
    const std::string err = check_file(p, m, m.universe_bytes,
                                       m.universe_checksum, 0, true);
    if (!err.empty()) {
      result.error = p.string() + ": " + err;
      return result;
    }
  }
  for (const ShardEntry& s : m.shards) {
    const fs::path p = dir / s.file;
    const std::string err = check_file(p, m, s.file_bytes, s.header_checksum,
                                       s.device_count, false);
    if (!err.empty()) {
      result.error = p.string() + ": shard " + std::to_string(s.index) +
                     ": " + err;
      return result;
    }
    SnapshotInfo info;
    // check_file already read the header successfully; re-read for the
    // per-shard counts that aren't covered by its common checks.
    if (read_snapshot_info(p, info).ok() &&
        (info.n_samples != s.n_samples ||
         info.n_app_traffic != s.n_app_traffic)) {
      result.error = p.string() + ": shard " + std::to_string(s.index) +
                     ": sample/app-traffic counts do not match the manifest";
      return result;
    }
  }
  return result;
}

SnapshotResult ShardedDataset::open(const fs::path& dir, ShardedDataset& out,
                                    const SnapshotLoadOptions& opts) {
  out = ShardedDataset{};
  SnapshotResult result = read_shard_manifest(dir, out.manifest_);
  if (!result.ok()) return result;
  result = verify_shard_store(dir, out.manifest_);
  if (!result.ok()) return result;

  // The universe stays resident: every shard shares it, and it is tiny
  // next to one shard's samples.
  Dataset u;
  SnapshotLoadOptions uopts = opts;
  uopts.defer_validate = false;
  result = load_snapshot(dir / out.manifest_.universe_file, u, uopts);
  if (!result.ok()) return result;
  out.aps_ = std::move(u.aps);
  out.truth_aps_ = std::move(u.truth.aps);
  out.year_ = u.year;
  out.calendar_ = u.calendar;
  out.dir_ = dir;

  // Once-per-open payload verification state: cleared flags here, set
  // by the first successful load of each shard.
  const std::size_t n_shards = out.manifest_.shards.size();
  out.payload_verified_ =
      std::shared_ptr<std::atomic<bool>[]>(new std::atomic<bool>[n_shards]);
  for (std::size_t i = 0; i < n_shards; ++i) {
    out.payload_verified_.get()[i].store(false, std::memory_order_relaxed);
  }
  const char* verify_env = std::getenv("TOKYONET_SHARD_VERIFY");
  out.verify_always_ =
      verify_env != nullptr && std::string_view(verify_env) == "always";
  return result;
}

SnapshotResult ShardedDataset::load_shard(std::size_t i, Dataset& out,
                                          const SnapshotLoadOptions& opts) {
  SnapshotResult result;
  if (i >= manifest_.shards.size()) {
    result.error = dir_err(dir_, "shard index " + std::to_string(i) +
                                     " out of range");
    return result;
  }
  const ShardEntry& entry = manifest_.shards[i];
  const fs::path path = dir_ / entry.file;

  // The shard file carries no AP universe, so its samples reference APs
  // it does not hold: load deferred, install the shared universe, then
  // validate + index ourselves. Payload checksums are rehashed only on
  // the shard's first load this open (or always, under
  // TOKYONET_SHARD_VERIFY=always); header and manifest identity checks
  // run on every load.
  SnapshotLoadOptions sopts = opts;
  sopts.defer_validate = true;
  const bool verified =
      payload_verified_ != nullptr &&
      payload_verified_.get()[i].load(std::memory_order_acquire);
  if (verified && !verify_always_) sopts.verify_payload = false;
  SnapshotInfo info;
  result = load_snapshot(path, out, sopts, &info);
  if (!result.ok()) return result;
  if (info.header_checksum != entry.header_checksum) {
    out = Dataset{};
    result.error =
        path.string() + ": file changed since the store was opened";
    return result;
  }
  out.aps = aps_;
  out.truth.aps = truth_aps_;

  // validate_frame() covers the non-sample shapes; build_index()'s
  // projection pass enforces every per-sample rule validate() would
  // (ordering, device/AP/app-range/bin bounds) in the same sweep that
  // builds the SoA columns, so the sample array is walked once, not
  // twice.
  const std::string invalid = out.validate_frame();
  if (!invalid.empty()) {
    out = Dataset{};
    result.error = path.string() + ": invalid shard dataset: " + invalid;
    return result;
  }
  if (!out.build_index()) {
    out = Dataset{};
    result.error = path.string() +
                   ": invalid shard dataset: sample stream unordered or "
                   "referencing out-of-range device/AP/app records";
    return result;
  }
  if (payload_verified_ != nullptr && sopts.verify_payload) {
    payload_verified_.get()[i].store(true, std::memory_order_release);
  }
  return result;
}

SnapshotResult ShardedDataset::materialize(Dataset& out,
                                           const SnapshotLoadOptions& opts,
                                           std::size_t resident_shards) {
  SnapshotResult result;
  out = Dataset{};
  out.year = year_;
  out.calendar = calendar_;
  out.devices.reserve(static_cast<std::size_t>(manifest_.n_devices));
  out.survey.reserve(static_cast<std::size_t>(manifest_.n_devices));
  out.truth.devices.reserve(static_cast<std::size_t>(manifest_.n_devices));
  out.samples.resize_for_overwrite(
      static_cast<std::size_t>(manifest_.n_samples));
  out.app_traffic.reserve(static_cast<std::size_t>(manifest_.n_app_traffic));

  // Concatenation reads raw shard snapshots (no per-shard universe
  // install or index build; the result is validated and indexed once,
  // below). With resident_shards >= 1 the next shard's load — read plus
  // checksum — overlaps the current shard's rebase on one background
  // loader, holding at most two shard payloads at a time.
  SnapshotLoadOptions sopts = opts;
  sopts.defer_validate = true;
  struct RawLoad {
    Dataset shard;
    SnapshotResult result;
  };
  const auto load_raw = [&](std::size_t i) {
    RawLoad r;
    SnapshotInfo info;
    r.result =
        load_snapshot(dir_ / manifest_.shards[i].file, r.shard, sopts, &info);
    return r;
  };
  const bool pipelined = resident_shards >= 1 && manifest_.shards.size() > 1;

  std::size_t device_base = 0, sample_base = 0;
  const auto concat_shard = [&](Dataset& shard) {
    const auto app_base = static_cast<std::uint32_t>(out.app_traffic.size());
    for (const DeviceInfo& d : shard.devices) {
      DeviceInfo g = d;
      g.id = DeviceId{static_cast<std::uint32_t>(device_base + value(d.id))};
      out.devices.push_back(g);
    }
    out.survey.insert(out.survey.end(), shard.survey.begin(),
                      shard.survey.end());
    for (DeviceTruth& t : shard.truth.devices) {
      out.truth.devices.push_back(std::move(t));
    }
    out.app_traffic.insert(out.app_traffic.end(), shard.app_traffic.begin(),
                           shard.app_traffic.end());

    // Rebase the sample stream: device ids always, app_begin only for
    // Android devices — iOS samples keep app_begin = 0, exactly as the
    // simulator's splice leaves them.
    const std::span<const Sample> src = shard.samples.span();
    Sample* dst = out.samples.data() + sample_base;
    for (std::size_t k = 0; k < src.size(); ++k) {
      Sample s = src[k];
      const std::size_t local = value(s.device);
      s.device = DeviceId{static_cast<std::uint32_t>(device_base + local)};
      if (local < shard.devices.size() &&
          shard.devices[local].os == Os::Android) {
        s.app_begin += app_base;
      }
      dst[k] = s;
    }

    device_base += shard.devices.size();
    sample_base += src.size();
  };

  RawLoad pending;
  if (pipelined) pending = load_raw(0);
  for (std::size_t i = 0; i < manifest_.shards.size(); ++i) {
    RawLoad cur = pipelined ? std::move(pending) : load_raw(i);
    std::thread loader;
    if (pipelined && i + 1 < manifest_.shards.size()) {
      pending = RawLoad{};
      loader = std::thread([&pending, &load_raw, i] {
        pending = load_raw(i + 1);
      });
    }
    if (cur.result.ok()) concat_shard(cur.shard);
    // Join before inspecting the error so `pending` is never abandoned
    // mid-write.
    if (loader.joinable()) loader.join();
    if (!cur.result.ok()) {
      out = Dataset{};
      return cur.result;
    }
  }

  out.aps = aps_;
  out.truth.aps = truth_aps_;

  const std::string invalid = out.validate();
  if (!invalid.empty()) {
    out = Dataset{};
    result.error = dir_err(dir_, "invalid materialized dataset: " + invalid);
    return result;
  }
  if (!out.build_index()) {
    out = Dataset{};
    result.error =
        dir_err(dir_, "invalid materialized dataset: samples not ordered");
    return result;
  }
  return result;
}

// --- ShardPrefetcher ---------------------------------------------------

struct ShardPrefetcher::Impl {
  /// State shared between the loader thread, the consumer, and any
  /// still-alive residency tokens (tokens co-own it so a token dropped
  /// after the prefetcher's destruction stays harmless).
  struct Shared {
    std::mutex mu;
    std::condition_variable token_cv;  // loader waits for a free token
    std::condition_variable ready_cv;  // consumer waits for a delivery
    std::size_t free_tokens = 0;
    bool cancelled = false;
    bool done = false;
    std::deque<Loaded> ready;  // in shard order (single loader)
  };
  std::shared_ptr<Shared> sh;
  std::thread loader;

  [[nodiscard]] static std::shared_ptr<void> make_token(
      std::shared_ptr<Shared> s) {
    // Store a non-null pointer so the token tests truthy; the deleter
    // alone carries the semantics (return one residency slot).
    void* mark = s.get();
    return std::shared_ptr<void>(mark, [s = std::move(s)](void*) {
      std::lock_guard<std::mutex> lk(s->mu);
      ++s->free_tokens;
      s->token_cv.notify_one();
    });
  }
};

ShardPrefetcher::ShardPrefetcher(ShardedDataset& store,
                                 std::size_t max_resident,
                                 const SnapshotLoadOptions& opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->sh = std::make_shared<Impl::Shared>();
  impl_->sh->free_tokens = max_resident < 1 ? 1 : max_resident;
  impl_->loader = std::thread([sh = impl_->sh, &store, opts] {
    const std::size_t n = store.num_shards();
    for (std::size_t i = 0; i < n; ++i) {
      {
        std::unique_lock<std::mutex> lk(sh->mu);
        sh->token_cv.wait(
            lk, [&] { return sh->free_tokens > 0 || sh->cancelled; });
        if (sh->cancelled) break;
        --sh->free_tokens;
      }
      Loaded item;
      item.index = i;
      item.token = Impl::make_token(sh);
      item.result = store.load_shard(i, item.dataset, opts);
      const bool failed = !item.result.ok();
      {
        std::lock_guard<std::mutex> lk(sh->mu);
        sh->ready.push_back(std::move(item));
        sh->ready_cv.notify_all();
      }
      // An errored load is delivered at its position, then the loader
      // stops: the consumer sees the failure in order with nothing
      // queued behind it.
      if (failed) break;
    }
    std::lock_guard<std::mutex> lk(sh->mu);
    sh->done = true;
    sh->ready_cv.notify_all();
  });
}

ShardPrefetcher::~ShardPrefetcher() {
  cancel();
  if (impl_->loader.joinable()) impl_->loader.join();
  // Drain undelivered items outside the lock: each holds a token whose
  // deleter both locks sh->mu and keeps Shared alive (a reference
  // cycle through the ready queue if left in place).
  std::deque<Loaded> undelivered;
  {
    std::lock_guard<std::mutex> lk(impl_->sh->mu);
    undelivered.swap(impl_->sh->ready);
  }
}

bool ShardPrefetcher::next(Loaded& out) {
  Impl::Shared& sh = *impl_->sh;
  Loaded item;
  {
    std::unique_lock<std::mutex> lk(sh.mu);
    sh.ready_cv.wait(lk, [&] { return !sh.ready.empty() || sh.done; });
    if (sh.ready.empty()) return false;
    item = std::move(sh.ready.front());
    sh.ready.pop_front();
  }
  // Assign outside the lock: dropping the caller's *previous* Loaded
  // releases its residency token, whose deleter locks sh.mu.
  out = std::move(item);
  return true;
}

void ShardPrefetcher::cancel() {
  Impl::Shared& sh = *impl_->sh;
  std::lock_guard<std::mutex> lk(sh.mu);
  sh.cancelled = true;
  sh.token_cv.notify_all();
}

}  // namespace tokyonet::io
