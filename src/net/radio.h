// Radio propagation model: log-distance path loss with lognormal
// shadowing. Produces the RSSI values the measurement software reports
// for associated and scanned APs (Figs 15, 17; §3.4.4, §3.5).
#pragma once

#include <cstdint>

#include "core/types.h"
#include "stats/philox.h"

namespace tokyonet::net {

/// RSSI threshold the paper uses for "strong enough to associate /
/// acceptable quality" (§3.4.4, §3.5): -70 dBm.
inline constexpr double kStrongRssiDbm = -70.0;

/// Floor/ceiling reported by device radios.
inline constexpr double kMinRssiDbm = -95.0;
inline constexpr double kMaxRssiDbm = -25.0;

/// Parameters of the log-distance path-loss model
///   PL(d) = PL(d0) + 10 n log10(d/d0) + X_sigma.
struct PathLossModel {
  double tx_power_dbm = 16.0;     // typical consumer AP EIRP
  double ref_loss_24_db = 40.0;   // free-space loss at 1 m, 2.4 GHz
  double ref_loss_5_db = 47.0;    // ~7 dB worse at 5 GHz
  double exponent = 3.0;          // indoor/urban mixed environment
  double shadow_sigma_db = 6.0;   // lognormal shadowing
};

/// Deterministic mean RSSI (no shadowing) at `distance_m` metres.
[[nodiscard]] double mean_rssi_dbm(const PathLossModel& model,
                                   double distance_m, Band band) noexcept;

/// RSSI sample including shadowing, clamped to the radio's report range.
/// Draws one normal from the caller's counter-based stream.
[[nodiscard]] double sample_rssi_dbm(const PathLossModel& model,
                                     double distance_m, Band band,
                                     stats::PhiloxRng& rng) noexcept;

/// Clamp + round an RSSI to the int8 dBm the record schema stores.
[[nodiscard]] std::int8_t quantize_rssi(double rssi_dbm) noexcept;

}  // namespace tokyonet::net
