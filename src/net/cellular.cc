#include "net/cellular.h"

#include <cassert>

namespace tokyonet::net {

DeviceCapTracker::DeviceCapTracker(const CapParams& params, int num_days)
    : params_(params), daily_mb_(static_cast<std::size_t>(num_days), 0.0) {}

void DeviceCapTracker::add_download_mb(int day, double mb) {
  assert(day >= 0 && static_cast<std::size_t>(day) < daily_mb_.size());
  daily_mb_[static_cast<std::size_t>(day)] += mb;
}

double DeviceCapTracker::lookback_mb(int day) const noexcept {
  double sum = 0;
  for (int d = day - 3; d < day; ++d) {
    if (d < 0) continue;
    sum += daily_mb_[static_cast<std::size_t>(d)];
  }
  return sum;
}

bool DeviceCapTracker::capped_on(int day) const noexcept {
  return lookback_mb(day) > params_.threshold_mb;
}

double DeviceCapTracker::demand_multiplier(Carrier carrier, int day,
                                           int hour) const noexcept {
  if (!capped_on(day)) return 1.0;
  const bool peak =
      hour >= params_.peak_from_hour && hour < params_.peak_to_hour;
  if (!peak) return 1.0;
  return params_.relaxed[static_cast<int>(carrier)]
             ? params_.relaxed_suppression
             : params_.suppression;
}

CapTracker::CapTracker(const CapParams& params, std::size_t num_devices,
                       int num_days)
    : params_(params),
      devices_(num_devices, DeviceCapTracker(params, num_days)) {}

void CapTracker::add_download_mb(DeviceId device, int day, double mb) {
  devices_[value(device)].add_download_mb(day, mb);
}

double CapTracker::lookback_mb(DeviceId device, int day) const noexcept {
  return devices_[value(device)].lookback_mb(day);
}

bool CapTracker::capped_on(DeviceId device, int day) const noexcept {
  return devices_[value(device)].capped_on(day);
}

double CapTracker::demand_multiplier(DeviceId device, Carrier carrier,
                                     int day, int hour) const noexcept {
  return devices_[value(device)].demand_multiplier(carrier, day, hour);
}

}  // namespace tokyonet::net
