// Golden-file regression over the whole figure catalog: every
// registered figure, for every applicable campaign year, rendered to
// canonical JSON at the pinned golden scale, must byte-match the files
// under tests/golden/. The kernels are byte-identical at any thread
// count, so CMake registers this binary twice (golden_threads1 /
// golden_threads4) with different TOKYONET_THREADS values.
//
// After an intentional analysis change, regenerate the files with
//   tokyonet fig all --update-goldens --goldens tests/golden
#include <gtest/gtest.h>

#include <string>

#include "report/golden.h"
#include "report/runner.h"

#ifndef TOKYONET_GOLDEN_DIR
#error "TOKYONET_GOLDEN_DIR must name the pinned golden directory"
#endif

namespace tokyonet::report {
namespace {

TEST(Golden, EveryFigureMatchesItsGoldenFile) {
  Runner::Options opt;
  opt.scale = kGoldenScale;
  Runner runner(opt);
  const GoldenReport report = check_goldens(TOKYONET_GOLDEN_DIR, runner);
  for (const std::string& error : report.errors) {
    ADD_FAILURE() << error;
  }
  EXPECT_TRUE(report.ok());
  // One rendering per (figure, applicable year) combination; a new
  // figure must come with a regenerated golden set.
  EXPECT_EQ(report.figures, 75);
}

}  // namespace
}  // namespace tokyonet::report
