# Empty dependencies file for bench_ablate_home_threshold.
# This may be replaced when dependencies are built.
