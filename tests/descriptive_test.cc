#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/rng.h"

namespace tokyonet::stats {
namespace {

TEST(Descriptive, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.5811, 1e-3);
}

TEST(Descriptive, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(mean(one), 7.0);
  EXPECT_DOUBLE_EQ(median(one), 7.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Descriptive, MedianEvenOdd) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
}

TEST(Descriptive, PercentileEndpoints) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

class PercentileOracle : public ::testing::TestWithParam<double> {};

TEST_P(PercentileOracle, MatchesNearestRankWithinOneGap) {
  // Property: the interpolated percentile lies between the two nearest
  // order statistics.
  Rng rng(99);
  std::vector<double> xs;
  for (int i = 0; i < 501; ++i) xs.push_back(rng.uniform(0, 100));
  const double p = GetParam();
  const double v = percentile(xs, p);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  EXPECT_GE(v, xs[lo] - 1e-12);
  EXPECT_LE(v, xs[hi] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileOracle,
                         ::testing::Values(0.0, 5.0, 40.0, 50.0, 60.0, 95.0,
                                           99.9, 100.0));

TEST(Descriptive, SummaryOrdering) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.lognormal(1, 1));
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 1000u);
  EXPECT_LE(s.min, s.p05);
  EXPECT_LE(s.p05, s.median);
  EXPECT_LE(s.median, s.p95);
  EXPECT_LE(s.p95, s.max);
  EXPECT_GT(s.mean, s.median);  // lognormal skew
}

TEST(Descriptive, AnnualGrowthRateReproducesTable3) {
  // Paper Table 3: median All 57.9 -> 90.3 -> 126.5 has AGR 48%.
  const std::vector<double> all{57.9, 90.3, 126.5};
  EXPECT_NEAR(annual_growth_rate(all), 0.48, 0.005);
  // Median WiFi 9.2 -> 24.3 -> 50.7: AGR 134%.
  const std::vector<double> wifi{9.2, 24.3, 50.7};
  EXPECT_NEAR(annual_growth_rate(wifi), 1.34, 0.02);
  // Median cellular 19.5 -> 27.6 -> 35.6: AGR 35%.
  const std::vector<double> cell{19.5, 27.6, 35.6};
  EXPECT_NEAR(annual_growth_rate(cell), 0.35, 0.01);
  // Mean All 102.9 -> 179.9 -> 239.5: AGR 53%.
  const std::vector<double> mean_all{102.9, 179.9, 239.5};
  EXPECT_NEAR(annual_growth_rate(mean_all), 0.53, 0.01);
}

TEST(Descriptive, AnnualGrowthRateEdgeCases) {
  EXPECT_DOUBLE_EQ(annual_growth_rate(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(annual_growth_rate(std::vector<double>{0.0, 5.0}), 0.0);
  EXPECT_DOUBLE_EQ(annual_growth_rate(std::vector<double>{5.0, 5.0}), 0.0);
}

TEST(Descriptive, LinearFitExact) {
  const std::vector<double> xs{0, 1, 2, 3};
  const std::vector<double> ys{1, 3, 5, 7};
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Descriptive, LinearFitNoisy) {
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i);
    ys.push_back(0.5 * i + 10 + rng.normal(0, 1));
  }
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 0.5, 0.01);
  EXPECT_NEAR(f.intercept, 10, 1.0);
  EXPECT_GT(f.r2, 0.95);
}

TEST(Descriptive, LinearFitDegenerate) {
  const std::vector<double> x1{1};
  const std::vector<double> y1{2};
  EXPECT_DOUBLE_EQ(linear_fit(x1, y1).slope, 0.0);
  const std::vector<double> same_x{2, 2, 2};
  const std::vector<double> ys{1, 2, 3};
  EXPECT_DOUBLE_EQ(linear_fit(same_x, ys).slope, 0.0);
}

}  // namespace
}  // namespace tokyonet::stats
