#include "analysis/wifistate.h"

namespace tokyonet::analysis {

WifiStateProfiles compute_wifi_states(const Dataset& ds) {
  WifiStateProfiles p;
  const CampaignCalendar& cal = ds.calendar;
  for (const Sample& s : ds.samples) {
    const Os os = ds.devices[value(s.device)].os;
    const bool assoc = s.wifi_state == WifiState::Associated;
    if (os == Os::Android) {
      p.android_user.add(cal, s.bin, assoc ? 1.0 : 0.0, 1.0);
      p.android_off.add(cal, s.bin,
                        s.wifi_state == WifiState::Off ? 1.0 : 0.0, 1.0);
      p.android_available.add(
          cal, s.bin, s.wifi_state == WifiState::OnUnassociated ? 1.0 : 0.0,
          1.0);
    } else {
      p.ios_user.add(cal, s.bin, assoc ? 1.0 : 0.0, 1.0);
    }
  }
  return p;
}

std::array<double, kNumCarriers> ios_wifi_user_by_carrier(const Dataset& ds) {
  std::array<double, kNumCarriers> assoc{};
  std::array<double, kNumCarriers> total{};
  for (const Sample& s : ds.samples) {
    const DeviceInfo& dev = ds.devices[value(s.device)];
    if (dev.os != Os::Ios) continue;
    const auto c = static_cast<std::size_t>(dev.carrier);
    total[c] += 1;
    assoc[c] += s.wifi_state == WifiState::Associated;
  }
  std::array<double, kNumCarriers> out{};
  for (int c = 0; c < kNumCarriers; ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (total[i] > 0) out[i] = assoc[i] / total[i];
  }
  return out;
}

}  // namespace tokyonet::analysis
