// Equivalence tests for the shared DatasetIndex fast paths and the
// memoized AnalysisContext.
//
// Contract under test: every kernel converted to scan the index's SoA
// columns is *byte-identical* to the pre-index serial reference at any
// thread count. The reference is each kernel's preserved AoS fallback,
// exercised through an index-free copy of the campaign; the fast path
// runs at thread counts 1 and 4 and must reproduce it exactly (EXPECT_EQ
// on doubles, no tolerance).
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <vector>

#include "analysis/aggregate.h"
#include "analysis/apps.h"
#include "analysis/availability.h"
#include "analysis/battery.h"
#include "analysis/classify.h"
#include "analysis/common.h"
#include "analysis/context.h"
#include "analysis/quality.h"
#include "analysis/update.h"
#include "analysis/volumes.h"
#include "analysis/wifistate.h"
#include "core/dataset_index.h"
#include "core/parallel.h"
#include "geo/region.h"
#include "testutil.h"

namespace tokyonet::analysis {
namespace {

using test::add_sample;
using test::campaign;
using test::campaign_classification;
using test::empty_dataset;

/// Member-wise copy of `ds` without the acceleration index. Kernels see
/// index() == nullptr and take their preserved serial AoS path — the
/// pre-index reference semantics.
[[nodiscard]] Dataset unindexed_copy(const Dataset& ds) {
  Dataset out;
  out.year = ds.year;
  out.calendar = ds.calendar;
  out.devices = ds.devices;
  out.aps = ds.aps;
  out.samples = ds.samples;
  out.app_traffic = ds.app_traffic;
  out.survey = ds.survey;
  out.truth = ds.truth;
  return out;
}

/// Restores the environment-derived thread count on scope exit.
struct ThreadCountGuard {
  ~ThreadCountGuard() { core::set_thread_count(0); }
};

constexpr int kThreadCounts[] = {1, 4};

void expect_profile_eq(const WeeklyProfile& got, const WeeklyProfile& want) {
  EXPECT_EQ(got.num_series(), want.num_series());
  EXPECT_EQ(got.den_series(), want.den_series());
}

/// Runs `kernel` on the serial (unindexed) reference dataset, then on
/// the indexed campaign at each thread count, handing every result to
/// `check(got, ref)`.
template <typename Kernel, typename Check>
void expect_matches_serial(Year y, Kernel&& kernel, Check&& check) {
  ThreadCountGuard guard;
  const Dataset& ds = campaign(y);
  ASSERT_TRUE(ds.indexed());
  const Dataset serial = unindexed_copy(ds);
  ASSERT_FALSE(serial.indexed());
  core::set_thread_count(1);
  const auto ref = kernel(serial);
  for (int threads : kThreadCounts) {
    core::set_thread_count(threads);
    check(kernel(ds), ref);
  }
}

TEST(IndexEquivalence, AggregateSeries) {
  for (Year y : kAllYears) {
    for (Stream s : {Stream::CellRx, Stream::CellTx, Stream::WifiRx,
                     Stream::WifiTx}) {
      expect_matches_serial(
          y, [&](const Dataset& ds) { return aggregate_series(ds, s); },
          [](const HourlySeries& got, const HourlySeries& ref) {
            EXPECT_EQ(got.mbps, ref.mbps);
          });
    }
  }
}

TEST(IndexEquivalence, LocationSeries) {
  const LocationFilter filters[] = {
      {ApClass::Home, false}, {ApClass::Public, false}, {ApClass::Other, true}};
  for (Year y : kAllYears) {
    const ApClassification& cls = campaign_classification(y);
    for (const LocationFilter& f : filters) {
      for (bool rx : {true, false}) {
        expect_matches_serial(
            y,
            [&](const Dataset& ds) { return location_series(ds, cls, f, rx); },
            [](const HourlySeries& got, const HourlySeries& ref) {
              EXPECT_EQ(got.mbps, ref.mbps);
            });
      }
    }
  }
}

TEST(IndexEquivalence, WifiLocationShares) {
  for (Year y : kAllYears) {
    expect_matches_serial(
        y,
        [&](const Dataset& ds) {
          return wifi_location_shares(ds, campaign_classification(y));
        },
        [](const WifiLocationShares& got, const WifiLocationShares& ref) {
          EXPECT_EQ(got.home, ref.home);
          EXPECT_EQ(got.publik, ref.publik);
          EXPECT_EQ(got.office, ref.office);
          EXPECT_EQ(got.other, ref.other);
        });
  }
}

TEST(IndexEquivalence, RssiAnalysis) {
  for (Year y : kAllYears) {
    expect_matches_serial(
        y,
        [&](const Dataset& ds) {
          return rssi_analysis(ds, campaign_classification(y));
        },
        [](const RssiAnalysis& got, const RssiAnalysis& ref) {
          EXPECT_EQ(got.home_max_rssi, ref.home_max_rssi);
          EXPECT_EQ(got.public_max_rssi, ref.public_max_rssi);
          EXPECT_EQ(got.home_mean, ref.home_mean);
          EXPECT_EQ(got.public_mean, ref.public_mean);
          EXPECT_EQ(got.home_below_70_share, ref.home_below_70_share);
          EXPECT_EQ(got.public_below_70_share, ref.public_below_70_share);
        });
  }
}

TEST(IndexEquivalence, ChannelAnalysis) {
  for (Year y : kAllYears) {
    expect_matches_serial(
        y,
        [&](const Dataset& ds) {
          return channel_analysis(ds, campaign_classification(y));
        },
        [](const ChannelAnalysis& got, const ChannelAnalysis& ref) {
          EXPECT_EQ(got.home_pmf, ref.home_pmf);
          EXPECT_EQ(got.public_pmf, ref.public_pmf);
        });
  }
}

TEST(IndexEquivalence, ChannelInterference) {
  // Rides the converted per-AP top-cell scan (ap_cells_24).
  const geo::TokyoRegion region;
  for (Year y : kAllYears) {
    expect_matches_serial(
        y,
        [&](const Dataset& ds) {
          return channel_interference(ds, campaign_classification(y),
                                      region.grid().num_cells());
        },
        [](const InterferenceAnalysis& got, const InterferenceAnalysis& ref) {
          EXPECT_EQ(got.home_conflict_share, ref.home_conflict_share);
          EXPECT_EQ(got.public_conflict_share, ref.public_conflict_share);
          EXPECT_EQ(got.home_pairs, ref.home_pairs);
          EXPECT_EQ(got.public_pairs, ref.public_pairs);
        });
  }
}

TEST(IndexEquivalence, ApDensityMap) {
  const geo::TokyoRegion region;
  for (Year y : kAllYears) {
    for (ApClass which : {ApClass::Home, ApClass::Public}) {
      expect_matches_serial(
          y,
          [&](const Dataset& ds) {
            return ap_density_map(ds, campaign_classification(y), which,
                                  region.grid().num_cells());
          },
          [](const ApDensityMap& got, const ApDensityMap& ref) {
            EXPECT_EQ(got.count_by_cell, ref.count_by_cell);
            EXPECT_EQ(got.cells_with_ap, ref.cells_with_ap);
            EXPECT_EQ(got.cells_with_100, ref.cells_with_100);
            EXPECT_EQ(got.max_count, ref.max_count);
          });
    }
  }
}

TEST(IndexEquivalence, WifiStates) {
  for (Year y : kAllYears) {
    expect_matches_serial(
        y, [](const Dataset& ds) { return compute_wifi_states(ds); },
        [](const WifiStateProfiles& got, const WifiStateProfiles& ref) {
          expect_profile_eq(got.android_user, ref.android_user);
          expect_profile_eq(got.android_off, ref.android_off);
          expect_profile_eq(got.android_available, ref.android_available);
          expect_profile_eq(got.ios_user, ref.ios_user);
        });
  }
}

TEST(IndexEquivalence, IosWifiUserByCarrier) {
  for (Year y : kAllYears) {
    expect_matches_serial(
        y, [](const Dataset& ds) { return ios_wifi_user_by_carrier(ds); },
        [](const std::array<double, kNumCarriers>& got,
           const std::array<double, kNumCarriers>& ref) {
          EXPECT_EQ(got, ref);
        });
  }
}

TEST(IndexEquivalence, VolumesOverview) {
  for (Year y : kAllYears) {
    expect_matches_serial(
        y, [](const Dataset& ds) { return overview(ds); },
        [](const DatasetOverview& got, const DatasetOverview& ref) {
          EXPECT_EQ(got.n_android, ref.n_android);
          EXPECT_EQ(got.n_ios, ref.n_ios);
          EXPECT_EQ(got.n_total, ref.n_total);
          EXPECT_EQ(got.lte_traffic_share, ref.lte_traffic_share);
        });
  }
}

TEST(IndexEquivalence, AppBreakdown) {
  for (Year y : kAllYears) {
    const ApClassification& cls = campaign_classification(y);
    const std::vector<GeoCell> homes = infer_home_cells(campaign(y));
    expect_matches_serial(
        y, [&](const Dataset& ds) { return app_breakdown(ds, cls, homes); },
        [](const AppBreakdown& got, const AppBreakdown& ref) {
          EXPECT_EQ(got.rx_share, ref.rx_share);
          EXPECT_EQ(got.tx_share, ref.tx_share);
        });
  }
}

TEST(IndexEquivalence, AppBreakdownLightUsersOnly) {
  const Year y = Year::Y2015;
  const ApClassification& cls = campaign_classification(y);
  const Dataset& ds = campaign(y);
  const std::vector<GeoCell> homes = infer_home_cells(ds);
  const std::vector<UserDay> days = user_days(ds);
  const UserClassifier classes(days);
  AppBreakdownOptions opt;
  opt.light_users_only = true;
  opt.days = &days;
  opt.classes = &classes;
  expect_matches_serial(
      y, [&](const Dataset& d) { return app_breakdown(d, cls, homes, opt); },
      [](const AppBreakdown& got, const AppBreakdown& ref) {
        EXPECT_EQ(got.rx_share, ref.rx_share);
        EXPECT_EQ(got.tx_share, ref.tx_share);
      });
}

TEST(IndexEquivalence, ScanAvailability) {
  for (Year y : kAllYears) {
    expect_matches_serial(
        y, [](const Dataset& ds) { return scan_availability(ds); },
        [](const ScanAvailability& got, const ScanAvailability& ref) {
          EXPECT_EQ(got.all_24, ref.all_24);
          EXPECT_EQ(got.strong_24, ref.strong_24);
          EXPECT_EQ(got.all_5, ref.all_5);
          EXPECT_EQ(got.strong_5, ref.strong_5);
        });
  }
}

TEST(IndexEquivalence, BatteryAnalysis) {
  for (Year y : kAllYears) {
    expect_matches_serial(
        y, [](const Dataset& ds) { return battery_analysis(ds); },
        [](const BatteryAnalysis& got, const BatteryAnalysis& ref) {
          expect_profile_eq(got.mean_level, ref.mean_level);
          EXPECT_EQ(got.low_share, ref.low_share);
          EXPECT_EQ(got.mean, ref.mean);
        });
  }
}

// user_days / infer_home_cells / offload_opportunity need the index for
// per-device ranges in both paths, so their invariance is checked across
// thread counts: identical output at 1 and 4 threads.
TEST(IndexEquivalence, UserDaysThreadInvariant) {
  ThreadCountGuard guard;
  for (Year y : kAllYears) {
    const Dataset& ds = campaign(y);
    core::set_thread_count(1);
    const std::vector<UserDay> ref = user_days(ds);
    core::set_thread_count(4);
    const std::vector<UserDay> got = user_days(ds);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].device, ref[i].device);
      EXPECT_EQ(got[i].day, ref[i].day);
      EXPECT_EQ(got[i].cell_rx_mb, ref[i].cell_rx_mb);
      EXPECT_EQ(got[i].cell_tx_mb, ref[i].cell_tx_mb);
      EXPECT_EQ(got[i].wifi_rx_mb, ref[i].wifi_rx_mb);
      EXPECT_EQ(got[i].wifi_tx_mb, ref[i].wifi_tx_mb);
    }
  }
}

TEST(IndexEquivalence, HomeCellsAndOffloadThreadInvariant) {
  ThreadCountGuard guard;
  for (Year y : kAllYears) {
    const Dataset& ds = campaign(y);
    core::set_thread_count(1);
    const std::vector<GeoCell> homes_ref = infer_home_cells(ds);
    const OffloadOpportunity off_ref = offload_opportunity(ds);
    core::set_thread_count(4);
    EXPECT_EQ(infer_home_cells(ds), homes_ref);
    const OffloadOpportunity off = offload_opportunity(ds);
    EXPECT_EQ(off.users_with_stable_opportunity,
              off_ref.users_with_stable_opportunity);
    EXPECT_EQ(off.offloadable_cell_share, off_ref.offloadable_cell_share);
    EXPECT_EQ(off.num_wifi_available_users, off_ref.num_wifi_available_users);
  }
}

TEST(AnalysisContextTest, MemoizesSharedIntermediates) {
  const Dataset& ds = campaign(Year::Y2015);
  const AnalysisContext ctx(ds);
  // Repeated calls return the same object, not a recomputation.
  EXPECT_EQ(&ctx.updates(), &ctx.updates());
  EXPECT_EQ(&ctx.days(), &ctx.days());
  EXPECT_EQ(&ctx.classifier(), &ctx.classifier());
  EXPECT_EQ(&ctx.classification(), &ctx.classification());
  EXPECT_EQ(&ctx.home_cells(), &ctx.home_cells());
}

TEST(AnalysisContextTest, MatchesFreshComputation) {
  const Dataset& ds = campaign(Year::Y2015);
  const AnalysisContext ctx(ds);

  UpdateDetectOptions uopt;
  uopt.min_day = 9;  // 2015 campaign: release on day 9
  const UpdateDetection det = detect_updates(ds, uopt);
  EXPECT_EQ(ctx.updates().update_bin, det.update_bin);
  EXPECT_EQ(ctx.updates().num_updated, det.num_updated);

  UserDayOptions dopt;
  dopt.update_bin_by_device = &det.update_bin;
  const std::vector<UserDay> days = user_days(ds, dopt);
  ASSERT_EQ(ctx.days().size(), days.size());
  for (std::size_t i = 0; i < days.size(); ++i) {
    EXPECT_EQ(ctx.days()[i].device, days[i].device);
    EXPECT_EQ(ctx.days()[i].day, days[i].day);
    EXPECT_EQ(ctx.days()[i].total_rx_mb(), days[i].total_rx_mb());
  }

  const UserClassifier classes(days);
  for (const UserDay& d : days) {
    EXPECT_EQ(ctx.classifier().classify(d), classes.classify(d));
  }

  const ApClassification cls = classify_aps(ds);
  const auto got = ctx.classification().counts();
  const auto want = cls.counts();
  EXPECT_EQ(got.home, want.home);
  EXPECT_EQ(got.publik, want.publik);
  EXPECT_EQ(got.other, want.other);
  EXPECT_EQ(got.office, want.office);

  EXPECT_EQ(ctx.home_cells(), infer_home_cells(ds));
}

TEST(DatasetIndexTest, RejectsUnorderedOrOutOfRangeSamples) {
  {
    Dataset ds = empty_dataset(2, 1);
    add_sample(ds, 1, 0);
    add_sample(ds, 0, 0);  // device order violated
    EXPECT_FALSE(ds.build_index());
    EXPECT_FALSE(ds.indexed());
    EXPECT_EQ(ds.index(), nullptr);
    EXPECT_FALSE(ds.validate().empty());
  }
  {
    Dataset ds = empty_dataset(1, 2);
    add_sample(ds, 0, 5);
    add_sample(ds, 0, 3);  // bin order violated within the device
    EXPECT_FALSE(ds.build_index());
    EXPECT_FALSE(ds.indexed());
  }
  {
    Dataset ds = empty_dataset(1, 1);
    add_sample(ds, 0, static_cast<TimeBin>(kBinsPerDay));  // past day 0
    EXPECT_FALSE(ds.build_index());
  }
  {
    Dataset ds = empty_dataset(2, 1);
    add_sample(ds, 0, 0);
    add_sample(ds, 1, 0);
    EXPECT_TRUE(ds.build_index());
    EXPECT_TRUE(ds.indexed());
    ASSERT_NE(ds.index(), nullptr);
  }
}

TEST(DatasetIndexTest, RangesAndColumnsMirrorTheSampleStream) {
  const Dataset& ds = campaign(Year::Y2014);
  const core::DatasetIndex* idx = ds.index();
  ASSERT_NE(idx, nullptr);
  ASSERT_EQ(idx->num_samples(), ds.samples.size());

  // Device ranges tile [0, n) and agree with the per-sample device ids;
  // day ranges tile each device range.
  std::size_t expect_begin = 0;
  for (std::size_t d = 0; d < ds.devices.size(); ++d) {
    EXPECT_EQ(idx->device_begin(d), expect_begin);
    EXPECT_EQ(idx->day_begin(d, 0), idx->device_begin(d));
    EXPECT_EQ(idx->day_begin(d, ds.num_days()), idx->device_end(d));
    for (int day = 0; day < ds.num_days(); ++day) {
      EXPECT_LE(idx->day_begin(d, day), idx->day_begin(d, day + 1));
    }
    expect_begin = idx->device_end(d);
  }
  EXPECT_EQ(expect_begin, ds.samples.size());

  // SoA projections match the AoS fields (spot check a stride).
  for (std::size_t i = 0; i < ds.samples.size(); i += 97) {
    const Sample& s = ds.samples[i];
    EXPECT_EQ(idx->bin()[i], s.bin);
    EXPECT_EQ(idx->cell_rx()[i], s.cell_rx);
    EXPECT_EQ(idx->cell_tx()[i], s.cell_tx);
    EXPECT_EQ(idx->wifi_rx()[i], s.wifi_rx);
    EXPECT_EQ(idx->wifi_tx()[i], s.wifi_tx);
    EXPECT_EQ(idx->ap()[i], value(s.ap));
    EXPECT_EQ(idx->wifi_state()[i], s.wifi_state);
    EXPECT_EQ(idx->tech()[i], s.tech);
    EXPECT_EQ(idx->battery_pct()[i], s.battery_pct);
    EXPECT_EQ(idx->rssi_dbm()[i], s.rssi_dbm);
    EXPECT_EQ(idx->geo_cell()[i], s.geo_cell);
    EXPECT_EQ(idx->app_count()[i], s.app_count);
    EXPECT_EQ(idx->tethering(i), s.tethering);
    EXPECT_EQ(idx->scan_pub24_all()[i], s.scan_pub24_all);
    EXPECT_EQ(idx->scan_pub24_strong()[i], s.scan_pub24_strong);
    EXPECT_EQ(idx->scan_pub5_all()[i], s.scan_pub5_all);
    EXPECT_EQ(idx->scan_pub5_strong()[i], s.scan_pub5_strong);
  }
}

TEST(DatasetIndexTest, HourOfWeekTableMatchesWeeklyProfile) {
  const Dataset& ds = campaign(Year::Y2013);
  const core::DatasetIndex* idx = ds.index();
  ASSERT_NE(idx, nullptr);
  const auto table = idx->hour_of_week_table();
  const int num_bins = ds.num_days() * kBinsPerDay;
  ASSERT_EQ(static_cast<int>(table.size()), num_bins);
  for (int b = 0; b < num_bins; ++b) {
    EXPECT_EQ(table[static_cast<std::size_t>(b)],
              WeeklyProfile::hour_of_week(ds.calendar,
                                          static_cast<TimeBin>(b)));
  }
}

}  // namespace
}  // namespace tokyonet::analysis
