// WiFi quality and availability figures (Figs 15-17) and the §3.5
// offload-opportunity estimate, split out as its own registry entry so
// it can run for all three years.
#include "analysis/availability.h"
#include "analysis/quality.h"
#include "report/battery.h"
#include "report/figures.h"
#include "report/registry.h"
#include "report/runner.h"

namespace tokyonet::report {

Table render_sec35(Year year, const analysis::OffloadOpportunity& opp) {
  Table t({"year", "WiFi-available users", "stable opportunity",
           "offloadable cellular share"});
  t.add_row({Value::integer(year_number(year)),
             Value::integer(opp.num_wifi_available_users),
             Value::pct(opp.users_with_stable_opportunity, 0),
             Value::pct(opp.offloadable_cell_share, 0)});
  t.notes.push_back(
      "paper (§3.5, 2015): 60% of WiFi-available users have stable "
      "public options; 15-20% of their cellular volume is offloadable");
  return t;
}

namespace {

Table fig15(const FigureContext& ctx) {
  const analysis::RssiAnalysis r = analysis::rssi_analysis(
      ctx.source(), ctx.analysis().classification());
  const auto home = r.home_pdf();
  const auto pub = r.public_pdf();

  Table t({"RSSI [dBm]", "home PDF", "public PDF"});
  for (int i = 0; i < home.bins(); ++i) {
    t.add_row({Value::real(home.bin_center(i), 0), Value::real(home.pdf(i), 4),
               Value::real(pub.pdf(i), 4)});
  }
  t.notes.push_back(strf(
      "home mean %.0f dBm (paper -54); public mean %.0f dBm (paper ~-60)",
      r.home_mean, r.public_mean));
  t.notes.push_back(strf(
      "below -70 dBm: home %.0f%% (paper 3%%), public %.0f%% (paper 12%%)",
      100 * r.home_below_70_share, 100 * r.public_below_70_share));
  return t;
}

Table fig16(const FigureContext& ctx) {
  const analysis::ChannelAnalysis c = analysis::channel_analysis(
      ctx.source(), ctx.analysis().classification());

  Table t({"year", "channel", "home PMF", "public PMF"});
  for (int ch = 1; ch <= 13; ++ch) {
    const auto i = static_cast<std::size_t>(ch);
    t.add_row({Value::integer(year_number(ctx.year())), Value::integer(ch),
               Value::real(c.home_pmf[i], 3), Value::real(c.public_pmf[i], 3)});
  }
  t.notes.push_back(strf("home Ch1 share: %.2f   [paper: Ch1 pile-up in "
                         "2013 (factory defaults) disperses by 2015; "
                         "public APs planned on 1/6/11]",
                         c.home_pmf[1]));
  return t;
}

Table fig17(const FigureContext& ctx) {
  const analysis::ScanAvailability s =
      analysis::scan_availability(ctx.source());
  const auto a24 = s.ccdf_all_24();
  const auto s24 = s.ccdf_strong_24();
  const auto a5 = s.ccdf_all_5();
  const auto s5 = s.ccdf_strong_5();

  Table t({"#APs", "2.4G all", "2.4G strong", "5G all", "5G strong"});
  for (const double n : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    t.add_row({Value::real(n, 0), Value::real(a24.ccdf(n), 4),
               Value::real(s24.ccdf(n), 4), Value::real(a5.ccdf(n), 4),
               Value::real(s5.ccdf(n), 4)});
  }
  t.notes.push_back(
      "paper: 90% of devices see fewer than 10 2.4 GHz APs; ~30% see any "
      "5 GHz, ~10% a strong one");
  return t;
}

Table sec35(const FigureContext& ctx) {
  return render_sec35(ctx.year(),
                      analysis::offload_opportunity(ctx.source()));
}

}  // namespace

void register_quality_figures(FigureRegistry& r) {
  r.add({"fig15", "RSSI PDFs of associated 2.4 GHz home and public APs",
         "Fig 15 (RSSI PDFs of associated APs, 2015)", {Year::Y2015},
         &fig15, true});
  r.add({"fig16", "PMF of associated 2.4 GHz channels, home vs public",
         "Fig 16 (associated 2.4 GHz channels)", {Year::Y2013, Year::Y2015},
         &fig16, true});
  r.add({"fig17", "CCDFs of detected public WiFi networks per scan",
         "Fig 17 (public WiFi availability, 2015)", {Year::Y2015}, &fig17, true});
  r.add({"sec35_opportunity", "stable public-WiFi offload opportunity",
         "Sec 3.5 (offloadable traffic estimate)",
         {Year::Y2013, Year::Y2014, Year::Y2015}, &sec35, true});
}

}  // namespace tokyonet::report
