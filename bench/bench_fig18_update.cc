// Fig 18: timing of iOS 8.2 software updates (2015 campaign) — CDF/PDF
// since the first observed update, split by inferred home-AP presence.
#include "analysis/update.h"
#include "common.h"

namespace {

using namespace tokyonet;

void BM_DetectUpdates(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  analysis::UpdateDetectOptions opt;
  opt.min_day = 9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::detect_updates(ds, opt));
  }
}
BENCHMARK(BM_DetectUpdates)->Unit(benchmark::kMillisecond);

void BM_UpdateTiming(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  const auto& det = bench::updates(Year::Y2015);
  const auto& cls = bench::classification(Year::Y2015);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_update_timing(ds, det, cls));
  }
}
BENCHMARK(BM_UpdateTiming)->Unit(benchmark::kMicrosecond);

}  // namespace

TOKYONET_BENCH_FIGURE("fig18")
