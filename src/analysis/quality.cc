#include "analysis/quality.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <span>
#include <unordered_map>

#include "core/dataset_index.h"
#include "core/parallel.h"
#include "net/radio.h"
#include "stats/descriptive.h"

namespace tokyonet::analysis {
namespace {

// Chunk length for parallel scans over the SoA columns. Chunk partials
// are max-merges or exact integer sums, both grouping-independent, so
// the merged result is byte-identical to the serial reference at any
// thread count.
constexpr std::size_t kScanChunk = std::size_t{1} << 16;

[[nodiscard]] constexpr std::size_t num_chunks(std::size_t n) noexcept {
  return (n + kScanChunk - 1) / kScanChunk;
}

// Devices per parallel_map item for scans that need per-device fields
// (OS). Fixed, so the partial grouping never depends on the thread
// count.
constexpr std::size_t kDeviceBlock = 16;

/// Most common device geolocation per AP while associated, restricted
/// to APs with keep[ap] != 0; kNoGeoCell for APs never observed. The
/// per-chunk (ap, cell) counts are merged into per-AP ordered maps, so
/// the arg-max tie-break (lowest cell wins) matches the serial maps.
///
/// Devices dwell: consecutive samples usually repeat the same (ap,
/// geo-cell) pair, so each chunk run-length-encodes the pair stream and
/// pays one hash-map update per run instead of one per sample. Counts
/// are exact integers, so any run/chunk grouping merges identically.
[[nodiscard]] std::vector<GeoCell> top_cell_per_ap(
    const Dataset& ds, const core::DatasetIndex& idx,
    const std::vector<std::uint8_t>& keep) {
  const std::span<const std::uint32_t> ap = idx.ap();
  const std::span<const WifiState> state = idx.wifi_state();
  const std::span<const std::uint16_t> geo = idx.geo_cell();
  const std::size_t n = ap.size();

  using PairCounts = std::unordered_map<std::uint64_t, int>;
  const std::vector<PairCounts> partials =
      core::parallel_map(num_chunks(n), [&](std::size_t c) {
        PairCounts counts;
        const std::size_t begin = c * kScanChunk;
        const std::size_t end = std::min(begin + kScanChunk, n);
        std::size_t i = begin;
        while (i < end) {
          const std::uint32_t a = ap[i];
          const std::uint16_t g = geo[i];
          std::size_t j = i + 1;
          while (j < end && ap[j] == a && geo[j] == g) ++j;
          if (a != value(kNoAp) && g != kNoGeoCell && keep[a]) {
            int hits = 0;
            for (std::size_t k = i; k < j; ++k) {
              hits += state[k] == WifiState::Associated;
            }
            if (hits > 0) counts[(std::uint64_t{a} << 16) | g] += hits;
          }
          i = j;
        }
        return counts;
      });

  // Merge into one flat (ap, cell) -> count map, then take the per-AP
  // arg-max in a single pass. Picking the strictly larger count — or,
  // on ties, the lower cell id — is order-independent, so the result
  // matches the ordered-map reference (first-in-iteration-order win
  // over an ordered map == lowest cell id among tied counts).
  PairCounts total;
  std::size_t est = 0;
  for (const PairCounts& p : partials) est += p.size();
  total.reserve(est);
  for (const PairCounts& p : partials) {
    for (const auto& [key, k] : p) total[key] += k;
  }
  std::vector<int> best(ds.aps.size(), 0);
  std::vector<GeoCell> out(ds.aps.size(), kNoGeoCell);
  for (const auto& [key, k] : total) {
    const std::size_t a = key >> 16;
    const auto cell = static_cast<GeoCell>(key & 0xFFFF);
    if (k > best[a] || (k == best[a] && k > 0 && cell < out[a])) {
      best[a] = k;
      out[a] = cell;
    }
  }
  return out;
}

}  // namespace

stats::Histogram RssiAnalysis::home_pdf() const {
  stats::Histogram h(-95, -20, 25);
  for (double r : home_max_rssi) h.add(r);
  return h;
}

stats::Histogram RssiAnalysis::public_pdf() const {
  stats::Histogram h(-95, -20, 25);
  for (double r : public_max_rssi) h.add(r);
  return h;
}

RssiAnalysis rssi_analysis(const Dataset& ds, const ApClassification& cls) {
  // Max RSSI per associated 2.4 GHz AP.
  std::vector<double> max_rssi(ds.aps.size(), -1e9);

  const core::DatasetIndex* idx = ds.index();
  if (idx == nullptr) {
    for (const Sample& s : ds.samples) {
      if (s.wifi_state != WifiState::Associated || s.ap == kNoAp) continue;
      if (ds.aps[value(s.ap)].band != Band::B24GHz) continue;
      max_rssi[value(s.ap)] =
          std::max(max_rssi[value(s.ap)], static_cast<double>(s.rssi_dbm));
    }
  } else {
    std::vector<std::uint8_t> band24(ds.aps.size(), 0);
    for (std::size_t a = 0; a < ds.aps.size(); ++a) {
      band24[a] = ds.aps[a].band == Band::B24GHz;
    }
    const std::span<const std::uint32_t> ap = idx->ap();
    const std::span<const WifiState> state = idx->wifi_state();
    const std::span<const std::int8_t> rssi = idx->rssi_dbm();
    const std::size_t n = ap.size();
    // Devices dwell on one AP for many consecutive bins, so each chunk
    // run-length-encodes the AP stream and emits one (ap, run max) pair
    // per association run — the per-AP filter runs once per run, and
    // the inner max over the run is a branch-free select the compiler
    // vectorizes. Max-merge of the pairs is order-independent, so the
    // result is byte-identical at any thread count / chunk grouping.
    // RSSI is an int8; track maxima in int16 with a below-range
    // sentinel.
    constexpr std::int16_t kUnseen = -32768;
    using RunMax = std::pair<std::uint32_t, std::int16_t>;
    const std::vector<std::vector<RunMax>> partials =
        core::parallel_map(num_chunks(n), [&](std::size_t c) {
          std::vector<RunMax> maxima;
          const std::size_t begin = c * kScanChunk;
          const std::size_t end = std::min(begin + kScanChunk, n);
          std::size_t i = begin;
          while (i < end) {
            const std::uint32_t a = ap[i];
            std::size_t j = i + 1;
            while (j < end && ap[j] == a) ++j;
            if (a != value(kNoAp) && band24[a]) {
              std::int16_t m = kUnseen;
              for (std::size_t k = i; k < j; ++k) {
                const std::int16_t r = state[k] == WifiState::Associated
                                           ? std::int16_t{rssi[k]}
                                           : kUnseen;
                m = std::max(m, r);
              }
              if (m != kUnseen) maxima.emplace_back(a, m);
            }
            i = j;
          }
          return maxima;
        });
    for (const std::vector<RunMax>& p : partials) {
      for (const auto& [a, m] : p) {
        max_rssi[a] = std::max(max_rssi[a], static_cast<double>(m));
      }
    }
  }

  RssiAnalysis out;
  for (std::size_t i = 0; i < ds.aps.size(); ++i) {
    if (max_rssi[i] < -200) continue;
    switch (cls.ap_class[i]) {
      case ApClass::Home: out.home_max_rssi.push_back(max_rssi[i]); break;
      case ApClass::Public: out.public_max_rssi.push_back(max_rssi[i]); break;
      case ApClass::Other: break;
    }
  }
  out.home_mean = stats::mean(out.home_max_rssi);
  out.public_mean = stats::mean(out.public_max_rssi);
  auto below = [](const std::vector<double>& v) {
    if (v.empty()) return 0.0;
    std::size_t n = 0;
    for (double r : v) n += r < net::kStrongRssiDbm;
    return static_cast<double>(n) / static_cast<double>(v.size());
  };
  out.home_below_70_share = below(out.home_max_rssi);
  out.public_below_70_share = below(out.public_max_rssi);
  return out;
}

ChannelAnalysis channel_analysis(const Dataset& ds,
                                 const ApClassification& cls) {
  ChannelAnalysis out;
  std::array<double, 14> home{}, publik{};
  double home_total = 0, public_total = 0;

  const core::DatasetIndex* idx = ds.index();
  if (idx == nullptr) {
    for (const Sample& s : ds.samples) {
      if (s.wifi_state != WifiState::Associated || s.ap == kNoAp) continue;
      if (ds.devices[value(s.device)].os != Os::Android) continue;
      const ApInfo& ap = ds.aps[value(s.ap)];
      if (ap.band != Band::B24GHz || ap.channel > 13) continue;
      switch (cls.class_of(s.ap)) {
        case ApClass::Home:
          home[ap.channel] += 1;
          home_total += 1;
          break;
        case ApClass::Public:
          publik[ap.channel] += 1;
          public_total += 1;
          break;
        case ApClass::Other:
          break;
      }
    }
  } else {
    // Per-AP code into a flat 29-slot count table: 0 = trash,
    // 1 + channel = home, 15 + channel = public. A trailing sentinel
    // row absorbs out-of-range AP ids, so associated samples need no
    // bounds or class branches — one gather + increment each.
    const std::size_t naps = ds.aps.size();
    std::vector<std::uint8_t> code(naps + 1, 0);
    for (std::size_t a = 0; a < naps; ++a) {
      const ApInfo& ap = ds.aps[a];
      if (ap.band != Band::B24GHz || ap.channel > 13) continue;
      if (cls.ap_class[a] == ApClass::Home) {
        code[a] = static_cast<std::uint8_t>(1 + ap.channel);
      } else if (cls.ap_class[a] == ApClass::Public) {
        code[a] = static_cast<std::uint8_t>(15 + ap.channel);
      }
    }
    const std::span<const std::uint32_t> ap = idx->ap();
    const std::span<const WifiState> state = idx->wifi_state();
    const std::size_t n_devices = ds.devices.size();
    using Counts = std::array<std::uint64_t, 29>;
    const std::size_t n_blocks =
        (n_devices + kDeviceBlock - 1) / kDeviceBlock;
    const std::vector<Counts> partials =
        core::parallel_map(n_blocks, [&](std::size_t b) {
          Counts counts{};
          const std::size_t d0 = b * kDeviceBlock;
          const std::size_t d1 = std::min(d0 + kDeviceBlock, n_devices);
          for (std::size_t d = d0; d < d1; ++d) {
            if (ds.devices[d].os != Os::Android) continue;
            const std::size_t end = idx->device_end(d);
            for (std::size_t i = idx->device_begin(d); i < end; ++i) {
              // Branch on association state: unassociated bins cluster
              // into long, well-predicted runs, and skipping them keeps
              // the counts[] increment chain off the common path.
              if (state[i] != WifiState::Associated) continue;
              const std::uint32_t a = ap[i];
              const std::size_t ki = a < naps ? a : naps;
              ++counts[code[ki]];
            }
          }
          return counts;
        });
    for (const Counts& p : partials) {
      for (std::size_t c = 0; c < 14; ++c) {
        home[c] += static_cast<double>(p[1 + c]);
        publik[c] += static_cast<double>(p[15 + c]);
        home_total += static_cast<double>(p[1 + c]);
        public_total += static_cast<double>(p[15 + c]);
      }
    }
  }

  for (int c = 0; c < 14; ++c) {
    out.home_pmf[static_cast<std::size_t>(c)] =
        home_total > 0 ? home[static_cast<std::size_t>(c)] / home_total : 0;
    out.public_pmf[static_cast<std::size_t>(c)] =
        public_total > 0 ? publik[static_cast<std::size_t>(c)] / public_total
                         : 0;
  }
  return out;
}

namespace {

/// Most common device geolocation per AP while associated (2.4 GHz only).
std::vector<GeoCell> ap_cells_24(const Dataset& ds) {
  if (const core::DatasetIndex* idx = ds.index()) {
    std::vector<std::uint8_t> band24(ds.aps.size(), 0);
    for (std::size_t a = 0; a < ds.aps.size(); ++a) {
      band24[a] = ds.aps[a].band == Band::B24GHz;
    }
    return top_cell_per_ap(ds, *idx, band24);
  }
  std::vector<std::map<GeoCell, int>> counts(ds.aps.size());
  for (const Sample& s : ds.samples) {
    if (s.wifi_state != WifiState::Associated || s.ap == kNoAp) continue;
    if (s.geo_cell == kNoGeoCell) continue;
    if (ds.aps[value(s.ap)].band != Band::B24GHz) continue;
    ++counts[value(s.ap)][s.geo_cell];
  }
  std::vector<GeoCell> out(ds.aps.size(), kNoGeoCell);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    int best = 0;
    for (const auto& [cell, n] : counts[i]) {
      if (n > best) {
        best = n;
        out[i] = cell;
      }
    }
  }
  return out;
}

}  // namespace

InterferenceAnalysis channel_interference(const Dataset& ds,
                                          const ApClassification& cls,
                                          int num_cells, int min_channel_gap) {
  const std::vector<GeoCell> cells = ap_cells_24(ds);
  // Bucket associated 2.4 GHz APs per cell, tagged with class+channel.
  struct Entry {
    ApClass klass;
    int channel;
  };
  std::vector<std::vector<Entry>> by_cell(static_cast<std::size_t>(num_cells));
  for (std::size_t i = 0; i < ds.aps.size(); ++i) {
    if (!cls.associated[i] || cells[i] == kNoGeoCell) continue;
    if (cells[i] >= num_cells) continue;
    if (cls.ap_class[i] == ApClass::Other) continue;
    by_cell[cells[i]].push_back(Entry{cls.ap_class[i], ds.aps[i].channel});
  }

  InterferenceAnalysis out;
  int home_conflicts = 0, public_conflicts = 0;
  for (const auto& bucket : by_cell) {
    for (std::size_t a = 0; a < bucket.size(); ++a) {
      for (std::size_t b = a + 1; b < bucket.size(); ++b) {
        if (bucket[a].klass != bucket[b].klass) continue;
        const bool overlap =
            std::abs(bucket[a].channel - bucket[b].channel) < min_channel_gap;
        if (bucket[a].klass == ApClass::Home) {
          ++out.home_pairs;
          home_conflicts += overlap;
        } else {
          ++out.public_pairs;
          public_conflicts += overlap;
        }
      }
    }
  }
  if (out.home_pairs > 0) {
    out.home_conflict_share =
        static_cast<double>(home_conflicts) / out.home_pairs;
  }
  if (out.public_pairs > 0) {
    out.public_conflict_share =
        static_cast<double>(public_conflicts) / out.public_pairs;
  }
  return out;
}

ApDensityMap ap_density_map(const Dataset& ds, const ApClassification& cls,
                            ApClass which, int num_cells) {
  // Most common device geolocation per AP while associated.
  std::vector<GeoCell> top_cell;
  if (const core::DatasetIndex* idx = ds.index()) {
    std::vector<std::uint8_t> keep(ds.aps.size(), 0);
    for (std::size_t a = 0; a < ds.aps.size(); ++a) {
      keep[a] = cls.ap_class[a] == which;
    }
    top_cell = top_cell_per_ap(ds, *idx, keep);
  } else {
    std::vector<std::map<GeoCell, int>> cells(ds.aps.size());
    for (const Sample& s : ds.samples) {
      if (s.wifi_state != WifiState::Associated || s.ap == kNoAp) continue;
      if (s.geo_cell == kNoGeoCell) continue;
      if (cls.class_of(s.ap) != which) continue;
      ++cells[value(s.ap)][s.geo_cell];
    }
    top_cell.assign(ds.aps.size(), kNoGeoCell);
    for (std::size_t i = 0; i < ds.aps.size(); ++i) {
      int best = 0;
      for (const auto& [cell, n] : cells[i]) {
        if (n > best) {
          best = n;
          top_cell[i] = cell;
        }
      }
    }
  }

  ApDensityMap out;
  out.count_by_cell.assign(static_cast<std::size_t>(num_cells), 0);
  for (std::size_t i = 0; i < ds.aps.size(); ++i) {
    const GeoCell best_cell = top_cell[i];
    if (best_cell != kNoGeoCell && best_cell < num_cells) {
      ++out.count_by_cell[best_cell];
    }
  }
  for (int n : out.count_by_cell) {
    out.cells_with_ap += n >= 1;
    out.cells_with_100 += n >= 100;
    out.max_count = std::max(out.max_count, n);
  }
  return out;
}

}  // namespace tokyonet::analysis
