#include "analysis/context.h"

namespace tokyonet::analysis {

const UpdateDetection& AnalysisContext::updates() const {
  std::call_once(updates_once_, [&] {
    UpdateDetectOptions opt;
    // March 10th is day 9 (0-based) of the 2015 calendar; earlier
    // campaigns have no in-campaign release, so nothing may be detected.
    opt.min_day = ds_->year == Year::Y2015 ? 9 : ds_->num_days();
    updates_ = std::make_unique<UpdateDetection>(detect_updates(*ds_, opt));
  });
  return *updates_;
}

const std::vector<UserDay>& AnalysisContext::days() const {
  std::call_once(days_once_, [&] {
    UserDayOptions opt;
    opt.update_bin_by_device = &updates().update_bin;
    days_ = std::make_unique<std::vector<UserDay>>(user_days(*ds_, opt));
  });
  return *days_;
}

const UserClassifier& AnalysisContext::classifier() const {
  std::call_once(classifier_once_, [&] {
    classifier_ = std::make_unique<UserClassifier>(days());
  });
  return *classifier_;
}

const ApClassification& AnalysisContext::classification() const {
  std::call_once(classification_once_, [&] {
    classification_ = std::make_unique<ApClassification>(classify_aps(*ds_));
  });
  return *classification_;
}

const std::vector<GeoCell>& AnalysisContext::home_cells() const {
  std::call_once(home_cells_once_, [&] {
    home_cells_ = std::make_unique<std::vector<GeoCell>>(infer_home_cells(*ds_));
  });
  return *home_cells_;
}

}  // namespace tokyonet::analysis
