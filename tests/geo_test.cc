#include <gtest/gtest.h>

#include "geo/region.h"
#include "stats/rng.h"

namespace tokyonet::geo {
namespace {

TEST(Grid, CellRoundTrip) {
  const Grid g(36, 30);
  EXPECT_EQ(g.num_cells(), 1080);
  const Point p{12.0, 33.0};
  const GeoCell c = g.cell_at(p);
  EXPECT_EQ(g.cell_x(c), 2);
  EXPECT_EQ(g.cell_y(c), 6);
  const Point center = g.center_of(c);
  EXPECT_DOUBLE_EQ(center.x_km, 12.5);
  EXPECT_DOUBLE_EQ(center.y_km, 32.5);
}

TEST(Grid, ClampsOutOfBounds) {
  const Grid g(36, 30);
  EXPECT_EQ(g.cell_at({-5, -5}), g.cell_at({0, 0}));
  EXPECT_EQ(g.cell_at({1e6, 1e6}), g.cell_at({179.9, 149.9}));
}

TEST(Grid, CellDistance) {
  const Grid g(36, 30);
  const GeoCell a = g.cell_at({2.5, 2.5});
  const GeoCell b = g.cell_at({7.5, 2.5});
  EXPECT_DOUBLE_EQ(g.cell_distance_km(a, b), 5.0);
  EXPECT_DOUBLE_EQ(g.cell_distance_km(a, a), 0.0);
}

TEST(Region, CitiesPresent) {
  const TokyoRegion region;
  const auto cities = region.cities();
  ASSERT_EQ(cities.size(), 10u);  // the ten Fig 10 anchors
  bool has_tokyo = false, has_yokohama = false;
  double home_weight_sum = 0;
  for (const City& c : cities) {
    has_tokyo |= c.name == "Tokyo";
    has_yokohama |= c.name == "Yokohama";
    home_weight_sum += c.home_weight;
    EXPECT_GT(c.sigma_km, 0);
  }
  EXPECT_TRUE(has_tokyo);
  EXPECT_TRUE(has_yokohama);
  EXPECT_NEAR(home_weight_sum, 1.0, 0.01);
}

class RegionSampling : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegionSampling, SamplesStayInBounds) {
  const TokyoRegion region;
  stats::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    for (const Point p : {region.sample_home(rng), region.sample_office(rng),
                          region.sample_public_spot(rng)}) {
      EXPECT_GE(p.x_km, 0);
      EXPECT_LT(p.x_km, region.grid().width_km());
      EXPECT_GE(p.y_km, 0);
      EXPECT_LT(p.y_km, region.grid().height_km());
    }
  }
}

TEST_P(RegionSampling, OfficesMoreConcentratedThanHomes) {
  const TokyoRegion region;
  stats::Rng rng(GetParam());
  const Point tokyo{90, 75};
  double home_dist = 0, office_dist = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    home_dist += distance_km(region.sample_home(rng), tokyo);
    office_dist += distance_km(region.sample_office(rng), tokyo);
  }
  EXPECT_LT(office_dist / n, home_dist / n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionSampling, ::testing::Values(1ull, 2ull, 77ull));

TEST(Region, DowntownFactorBoundsAndPeak) {
  const TokyoRegion region;
  const Grid& g = region.grid();
  double max_factor = 0;
  GeoCell peak_cell = 0;
  for (int c = 0; c < g.num_cells(); ++c) {
    const double f = region.downtown_factor(static_cast<GeoCell>(c));
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    if (f > max_factor) {
      max_factor = f;
      peak_cell = static_cast<GeoCell>(c);
    }
  }
  EXPECT_GT(max_factor, 0.90);
  // Peak should be at the Tokyo anchor.
  EXPECT_LT(distance_km(g.center_of(peak_cell), {90, 75}), 10.0);
}

TEST(Region, DowntownFactorFallsWithDistance) {
  const TokyoRegion region;
  const Grid& g = region.grid();
  const double center = region.downtown_factor(g.cell_at({90, 75}));
  const double edge = region.downtown_factor(g.cell_at({2, 2}));
  EXPECT_GT(center, 10 * edge);
}

TEST(Region, AlongPathInterpolates) {
  const Point a{0, 0}, b{10, 20};
  const Point mid = TokyoRegion::along_path(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.x_km, 5);
  EXPECT_DOUBLE_EQ(mid.y_km, 10);
  const Point start = TokyoRegion::along_path(a, b, 0.0);
  EXPECT_DOUBLE_EQ(start.x_km, 0);
}

}  // namespace
}  // namespace tokyonet::geo
