// Deterministic, platform-independent random number generation.
//
// <random>'s distribution objects are implementation-defined, which would
// make simulated campaigns differ across standard libraries; tokyonet
// therefore ships its own xoshiro256** engine and explicit distribution
// transforms. Given the same seed, a campaign is bit-identical everywhere,
// which the test suite relies on.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>

namespace tokyonet::stats {

/// SplitMix64: used to expand a single 64-bit seed into engine state and
/// to derive independent child streams.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97f4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna) with distribution helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x746F6B796F6E6574ull) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Derives an independent stream, e.g. one per device or per module, so
  /// adding draws in one component never perturbs another.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept {
    std::uint64_t mix = s_[0] ^ (s_[3] * 0x9E3779B97f4A7C15ull);
    mix ^= stream_id * 0xD1342543DE82EF95ull + 0x2545F4914F6CDD1Dull;
    return Rng{mix};
  }

  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// 32-bit-resolution uniform in [0, 1): API parity with
  /// PhiloxRng::uniform32 so the draw tables work with either engine.
  /// (Setup paths are cold; this still consumes one engine step.)
  [[nodiscard]] double uniform32() noexcept {
    return static_cast<double>(next_u64() >> 32) * 0x1.0p-32;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept {
    assert(n > 0);
    // Multiply-shift mapping of the top 53 bits; bias is negligible for
    // the population sizes used here and avoids non-standard __int128.
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (cached second variate).
  [[nodiscard]] double normal() noexcept {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    const double u2 = uniform();
    if (u1 <= 0) u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Lognormal: exp(N(mu, sigma)). `mu`/`sigma` are in log space.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with rate lambda (mean 1/lambda).
  [[nodiscard]] double exponential(double lambda) noexcept {
    assert(lambda > 0);
    double u = uniform();
    if (u <= 0) u = 0x1.0p-53;
    return -std::log(u) / lambda;
  }

  /// Pareto (Type I) with scale xm > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept {
    assert(xm > 0 && alpha > 0);
    double u = uniform();
    if (u <= 0) u = 0x1.0p-53;
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Poisson-distributed count (Knuth for small mean, normal approx for
  /// large mean).
  [[nodiscard]] unsigned poisson(double mean) noexcept {
    assert(mean >= 0);
    if (mean <= 0) return 0;
    if (mean > 30.0) {
      const double x = normal(mean, std::sqrt(mean));
      return x <= 0.5 ? 0u : static_cast<unsigned>(x + 0.5);
    }
    const double l = std::exp(-mean);
    unsigned k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }

  /// Draw an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires at least one positive weight.
  [[nodiscard]] std::size_t categorical(std::span<const double> weights) noexcept {
    double total = 0;
    for (double w : weights) {
      assert(w >= 0);
      total += w;
    }
    assert(total > 0);
    double x = uniform() * total;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Zipf-distributed rank in [1, n] with exponent s (inverse-CDF over a
  /// precomputed table is the caller's job for hot paths; this is the
  /// simple O(n) draw for modest n).
  [[nodiscard]] std::size_t zipf(std::size_t n, double s) noexcept {
    assert(n >= 1);
    double h = 0;
    for (std::size_t k = 1; k <= n; ++k) h += 1.0 / std::pow(double(k), s);
    double x = uniform() * h;
    for (std::size_t k = 1; k <= n; ++k) {
      x -= 1.0 / std::pow(double(k), s);
      if (x < 0) return k;
    }
    return n;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  double cached_ = 0;
  bool have_cached_ = false;
};

}  // namespace tokyonet::stats
