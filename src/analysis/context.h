// Memoized per-campaign analysis context.
//
// The paper answers 19 figures and 9 tables over the same three
// campaigns, and almost every one of them re-derives the same expensive
// intermediates: the user-day volume rollup, the heavy/light user
// classifier, the AP classification and the per-device home-cell
// inference. AnalysisContext computes each of them at most once per
// campaign — lazily, thread-safely via std::call_once — so the CLI, the
// bench suite (bench/common.cc) and any multi-kernel driver pay for a
// shared intermediate exactly once no matter how many kernels consume
// it.
//
// The context runs over a query::DataSource, so the same figure code
// serves both backends: constructed from a Dataset it wraps an
// InMemorySource and every intermediate is computed by the original
// in-memory function (bit-identical, enforced by
// tests/index_equiv_test.cc); constructed from a ShardedSource each
// intermediate is one bounded-memory pass over the shards, folding
// per-shard partials in shard order (update detection, user-day
// rollups, home cells and home-AP verdicts are per-device products;
// classification tallies merge by addition and set union), so the
// results are byte-identical to the in-memory ones. Only O(devices +
// aps) state is ever retained.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "analysis/classify.h"
#include "analysis/common.h"
#include "analysis/query/source.h"
#include "analysis/update.h"
#include "core/records.h"

namespace tokyonet::analysis {

class AnalysisContext {
 public:
  /// The context borrows `ds`; the dataset must outlive it.
  explicit AnalysisContext(const Dataset& ds)
      : owned_(std::make_unique<query::InMemorySource>(ds)),
        src_(owned_.get()) {}

  /// Borrows `src` (must outlive the context). Out of core, every
  /// intermediate below is one pass over the store.
  explicit AnalysisContext(const query::DataSource& src) : src_(&src) {}

  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  [[nodiscard]] const query::DataSource& source() const noexcept {
    return *src_;
  }

  /// The resident campaign. Only callable in-memory; out-of-core
  /// figures must consume source() (enforced — throws std::logic_error
  /// rather than silently materializing the campaign).
  [[nodiscard]] const Dataset& dataset() const;

  /// The global device table (ids are global indices in both backends).
  [[nodiscard]] std::span<const DeviceInfo> devices() const;

  /// iOS software-update detection (§3.7), global device indices. Uses
  /// the campaign's public release knowledge: day 9 for the 2015
  /// campaign (March 10th), no in-campaign release for earlier years.
  [[nodiscard]] const UpdateDetection& updates() const;

  /// The paper's main user-day rollup (§2 cleaning applied): tethering
  /// samples stripped, detected update days excluded. Ordered by
  /// (device, day) with global device ids.
  [[nodiscard]] const std::vector<UserDay>& days() const;

  /// Heavy/light user-day classifier over days().
  [[nodiscard]] const UserClassifier& classifier() const;

  /// AP classification (§3.4.1).
  [[nodiscard]] const ApClassification& classification() const;

  /// Per-device inferred nighttime home cell.
  [[nodiscard]] const std::vector<GeoCell>& home_cells() const;

 private:
  /// One pass computing devices + updates + days together (they share
  /// the scan: the rollup excludes each device's detected update days).
  void ensure_scan() const;

  std::unique_ptr<query::InMemorySource> owned_;  // in-memory ctor only
  const query::DataSource* src_;

  mutable std::once_flag scan_once_, classifier_once_, classification_once_,
      home_cells_once_;
  mutable std::vector<DeviceInfo> devices_;  // out-of-core only
  mutable std::unique_ptr<UpdateDetection> updates_;
  mutable std::unique_ptr<std::vector<UserDay>> days_;
  mutable std::unique_ptr<UserClassifier> classifier_;
  mutable std::unique_ptr<ApClassification> classification_;
  mutable std::unique_ptr<std::vector<GeoCell>> home_cells_;
};

}  // namespace tokyonet::analysis
