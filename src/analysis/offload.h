// Offload-impact estimates (§4.1): how smartphone WiFi offloading shows
// up in residential broadband traffic.
#pragma once

#include <vector>

#include "analysis/classify.h"
#include "analysis/common.h"
#include "analysis/query/fwd.h"
#include "core/records.h"

namespace tokyonet::analysis {

struct OffloadImpact {
  double median_cell_rx_mb = 0;   // 36 MB/day in 2015
  double median_wifi_rx_mb = 0;   // 51 MB/day
  double wifi_share = 0;          // 58% of smartphone traffic
  double wifi_to_cell_ratio = 0;  // 1.4 : 1
  /// Estimated share of total residential broadband volume that is
  /// smartphone WiFi traffic: cellular share of RBB (Fig 1's 20%) times
  /// the WiFi:cellular ratio, scaled by the at-home share of WiFi.
  double est_rbb_share = 0;       // ~28%
  /// One smartphone's share of a median residential customer's daily
  /// download (436 MB/day, [9]).
  double est_home_share = 0;      // ~12%
};

struct OffloadAssumptions {
  /// Nationwide cellular / RBB volume ratio at the end of 2014 (Fig 1).
  double cellular_share_of_rbb = 0.20;
  /// Median residential download per customer per day [9].
  double rbb_median_daily_mb = 436.0;
};

[[nodiscard]] OffloadImpact offload_impact(
    const Dataset& ds, const std::vector<UserDay>& days,
    const ApClassification& cls, const OffloadAssumptions& assume = {});
[[nodiscard]] OffloadImpact offload_impact(
    const query::DataSource& src, const std::vector<UserDay>& days,
    const ApClassification& cls, const OffloadAssumptions& assume = {});

}  // namespace tokyonet::analysis
