// Fig 8: WiFi-user ratio for heavy hitters vs light users, 2013 and 2015.
#include "analysis/ratios.h"
#include "common.h"

namespace {

using namespace tokyonet;

void BM_RatiosWithClasses(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2013);
  const auto& days = bench::days(Year::Y2013);
  const analysis::UserClassifier& classes = bench::classifier(Year::Y2013);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compute_wifi_ratios(ds, days, classes));
  }
}
BENCHMARK(BM_RatiosWithClasses)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_FIGURE("fig08")
