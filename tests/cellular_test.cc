#include "net/cellular.h"

#include <gtest/gtest.h>

namespace tokyonet::net {
namespace {

CapParams default_params() {
  CapParams p;
  p.threshold_mb = 1000;
  p.suppression = 0.2;
  p.peak_from_hour = 12;
  p.peak_to_hour = 23;
  p.relaxed = {false, false, false};
  p.relaxed_suppression = 0.9;
  return p;
}

TEST(CapTracker, LookbackWindowIsPreviousThreeDays) {
  CapTracker t(default_params(), 2, 10);
  const DeviceId d{0};
  t.add_download_mb(d, 0, 100);
  t.add_download_mb(d, 1, 200);
  t.add_download_mb(d, 2, 300);
  t.add_download_mb(d, 3, 400);
  EXPECT_DOUBLE_EQ(t.lookback_mb(d, 3), 600);   // days 0..2
  EXPECT_DOUBLE_EQ(t.lookback_mb(d, 4), 900);   // days 1..3
  EXPECT_DOUBLE_EQ(t.lookback_mb(d, 0), 0);     // nothing before day 0
  EXPECT_DOUBLE_EQ(t.lookback_mb(d, 1), 100);
}

TEST(CapTracker, AccumulatesWithinDay) {
  CapTracker t(default_params(), 1, 5);
  const DeviceId d{0};
  t.add_download_mb(d, 0, 400);
  t.add_download_mb(d, 0, 700);
  EXPECT_DOUBLE_EQ(t.lookback_mb(d, 1), 1100);
  EXPECT_TRUE(t.capped_on(d, 1));
}

TEST(CapTracker, ThresholdIsStrict) {
  CapTracker t(default_params(), 1, 5);
  const DeviceId d{0};
  t.add_download_mb(d, 0, 1000);
  EXPECT_FALSE(t.capped_on(d, 1));  // exactly 1000 is not over
  t.add_download_mb(d, 0, 0.1);
  EXPECT_TRUE(t.capped_on(d, 1));
}

TEST(CapTracker, DevicesIndependent) {
  CapTracker t(default_params(), 2, 5);
  t.add_download_mb(DeviceId{0}, 0, 5000);
  EXPECT_TRUE(t.capped_on(DeviceId{0}, 1));
  EXPECT_FALSE(t.capped_on(DeviceId{1}, 1));
}

class CapMultiplier : public ::testing::TestWithParam<int> {};

TEST_P(CapMultiplier, OnlyPeakHoursSuppressed) {
  CapTracker t(default_params(), 1, 5);
  const DeviceId d{0};
  t.add_download_mb(d, 0, 2000);
  const int hour = GetParam();
  const double m = t.demand_multiplier(d, Carrier::CarrierA, 1, hour);
  if (hour >= 12 && hour < 23) {
    EXPECT_DOUBLE_EQ(m, 0.2);
  } else {
    EXPECT_DOUBLE_EQ(m, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Hours, CapMultiplier,
                         ::testing::Values(0, 8, 11, 12, 15, 22, 23));

TEST(CapTracker, UncappedNeverSuppressed) {
  CapTracker t(default_params(), 1, 5);
  const DeviceId d{0};
  t.add_download_mb(d, 0, 100);
  for (int h = 0; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(t.demand_multiplier(d, Carrier::CarrierA, 1, h), 1.0);
  }
}

TEST(CapTracker, RelaxedCarrierSuppressesLess) {
  CapParams p = default_params();
  p.relaxed = {true, false, false};  // carrier A relaxed (Feb 2015, §3.8)
  CapTracker t(p, 1, 5);
  const DeviceId d{0};
  t.add_download_mb(d, 0, 2000);
  EXPECT_DOUBLE_EQ(t.demand_multiplier(d, Carrier::CarrierA, 1, 15), 0.9);
  EXPECT_DOUBLE_EQ(t.demand_multiplier(d, Carrier::CarrierB, 1, 15), 0.2);
}

TEST(CapTracker, WindowSlidesOffOldDays) {
  CapTracker t(default_params(), 1, 10);
  const DeviceId d{0};
  t.add_download_mb(d, 0, 2000);
  EXPECT_TRUE(t.capped_on(d, 1));
  EXPECT_TRUE(t.capped_on(d, 3));
  EXPECT_FALSE(t.capped_on(d, 4));  // day 0 is out of the window by now
}

}  // namespace
}  // namespace tokyonet::net
