#include "stats/tables.h"

#include <cassert>
#include <cmath>

#include "stats/philox.h"

namespace tokyonet::stats {

LognormalTable::LognormalTable(double mu, double sigma) {
  assert(sigma >= 0);
  constexpr std::size_t kKnots = 4096;
  q_.resize(kKnots);
  for (std::size_t i = 0; i < kKnots; ++i) {
    const double p =
        (static_cast<double>(i) + 0.5) / static_cast<double>(kKnots);
    q_[i] = std::exp(mu + sigma * PhiloxRng::inverse_normal_cdf(p));
  }
}

NormalTable::NormalTable(double mu, double sigma) {
  assert(sigma >= 0);
  constexpr std::size_t kKnots = 4096;
  q_.resize(kKnots);
  for (std::size_t i = 0; i < kKnots; ++i) {
    const double p =
        (static_cast<double>(i) + 0.5) / static_cast<double>(kKnots);
    q_[i] = mu + sigma * PhiloxRng::inverse_normal_cdf(p);
  }
}

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  assert(n > 0);
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Walker/Vose: split rows into under- and over-full relative to the
  // uniform share 1/n, then repeatedly top up an under-full row from an
  // over-full one.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly full up to rounding.
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

ZipfTable::ZipfTable(std::size_t n, double s) {
  assert(n >= 1);
  std::vector<double> w(n);
  for (std::size_t k = 1; k <= n; ++k) {
    w[k - 1] = 1.0 / std::pow(static_cast<double>(k), s);
  }
  table_ = AliasTable(w);
}

}  // namespace tokyonet::stats
