// User-type analysis (§3.3.1, Fig 5): the cellular-vs-WiFi daily-volume
// heat map, the cellular-intensive / WiFi-intensive / mixed user split,
// and the share of mixed user-days above the offloading diagonal.
#pragma once

#include <vector>

#include "analysis/common.h"
#include "core/records.h"
#include "stats/distribution.h"

namespace tokyonet::analysis {

struct UserTypeStats {
  /// Per *user* over the campaign (a user is cellular-intensive when
  /// their WiFi interface moved less than `idle_mb` in total, and vice
  /// versa).
  double cellular_intensive_frac = 0;  // 35% -> 22% in the paper
  double wifi_intensive_frac = 0;      // stable ~8%
  double mixed_frac = 0;
  /// Share of mixed-user days with WiFi > cellular download (55%).
  double mixed_above_diagonal_frac = 0;
};

[[nodiscard]] UserTypeStats user_type_stats(const Dataset& ds,
                                            const std::vector<UserDay>& days,
                                            double idle_mb = 1.0);

/// Fig 5's log-log heat map of (cellular, WiFi) daily download per
/// user-day, 10^-2..10^3 MB with the paper's axes.
[[nodiscard]] stats::LogHist2d user_day_heatmap(
    const std::vector<UserDay>& days, int bins_per_decade = 12);

}  // namespace tokyonet::analysis
