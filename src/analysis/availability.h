// Public WiFi availability for WiFi-available users (§3.5, Fig 17):
// CCDFs of the number of detected public networks per device per
// 10-minute scan, and the offloadable-cellular-traffic estimate.
#pragma once

#include <vector>

#include "analysis/query/fwd.h"
#include "core/records.h"
#include "stats/distribution.h"

namespace tokyonet::analysis {

/// Scan-count series by band and strength, over samples of devices in
/// the WiFi-available state (Android; iOS reports no scans).
struct ScanAvailability {
  std::vector<double> all_24;
  std::vector<double> strong_24;
  std::vector<double> all_5;
  std::vector<double> strong_5;

  [[nodiscard]] stats::Ecdf ccdf_all_24() const { return stats::Ecdf(all_24); }
  [[nodiscard]] stats::Ecdf ccdf_strong_24() const {
    return stats::Ecdf(strong_24);
  }
  [[nodiscard]] stats::Ecdf ccdf_all_5() const { return stats::Ecdf(all_5); }
  [[nodiscard]] stats::Ecdf ccdf_strong_5() const {
    return stats::Ecdf(strong_5);
  }
};

[[nodiscard]] ScanAvailability scan_availability(const Dataset& ds);
[[nodiscard]] ScanAvailability scan_availability(const query::DataSource& src);

/// §3.5's offloading headroom estimate for WiFi-available users.
struct OffloadOpportunity {
  /// Share of WiFi-available users who regularly see >= 1 strong public
  /// network ("stable" opportunity; ~60% in the paper).
  double users_with_stable_opportunity = 0;
  /// Share of those users' daily cellular download that occurred in bins
  /// where a strong public network was in range (15-20% in the paper).
  double offloadable_cell_share = 0;
  int num_wifi_available_users = 0;
};

struct OpportunityOptions {
  /// A user counts as WiFi-available if at least this share of their
  /// samples are in the OnUnassociated state.
  double available_state_share = 0.20;
  /// "Stable" opportunity: share of unassociated bins with >= 1 strong
  /// public network.
  double stable_bin_share = 0.15;
};

[[nodiscard]] OffloadOpportunity offload_opportunity(
    const Dataset& ds, const OpportunityOptions& opt = {});
[[nodiscard]] OffloadOpportunity offload_opportunity(
    const query::DataSource& src, const OpportunityOptions& opt = {});

/// One device's §3.5 tallies — a pure function of that device's stream,
/// so the out-of-core scan concatenates per-shard vectors in device
/// order and folds them with offload_opportunity_from_metrics(),
/// byte-identical to offload_opportunity() on the whole campaign.
struct OffloadDeviceMetrics {
  bool counted = false;  // Android with >= 1 sample
  std::size_t n = 0;
  std::size_t unassoc = 0, unassoc_strong = 0;
  double cell_rx_total = 0, cell_rx_covered = 0;
};

[[nodiscard]] std::vector<OffloadDeviceMetrics> offload_device_metrics(
    const Dataset& ds);
[[nodiscard]] std::vector<OffloadDeviceMetrics> offload_device_metrics(
    const query::DataSource& src);

[[nodiscard]] OffloadOpportunity offload_opportunity_from_metrics(
    const std::vector<OffloadDeviceMetrics>& metrics,
    const OpportunityOptions& opt = {});

}  // namespace tokyonet::analysis
