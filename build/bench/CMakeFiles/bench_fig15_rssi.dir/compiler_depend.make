# Empty compiler generated dependencies file for bench_fig15_rssi.
# This may be replaced when dependencies are built.
