// Table 1: overview of the three campaign datasets — device counts per
// OS and the share of cellular traffic on LTE.
#include "analysis/volumes.h"
#include "common.h"

namespace {

using namespace tokyonet;

void BM_Overview2015(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::overview(ds));
  }
}
BENCHMARK(BM_Overview2015)->Unit(benchmark::kMillisecond);

void BM_SimulateCampaign(benchmark::State& state) {
  // Times a full campaign simulation at a small, fixed scale so the
  // benchmark itself stays fast.
  std::size_t n_samples = 0;
  for (auto _ : state) {
    const Dataset ds = sim::simulate_year(Year::Y2015, 0.05);
    n_samples = ds.samples.size();
    benchmark::DoNotOptimize(n_samples);
  }
  // Generation throughput (samples/s) — run_bench.sh lifts the
  // items_per_second this produces into the BENCH json.
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n_samples));
}
BENCHMARK(BM_SimulateCampaign)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_FIGURE("table01")
