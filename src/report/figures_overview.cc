// Dataset overview and survey tables (Tables 1, 2, 8, 9). All are
// per-year; stacking the three years reproduces the paper's layouts.
#include "analysis/surveytab.h"
#include "analysis/volumes.h"
#include "report/battery.h"
#include "report/figures.h"
#include "report/registry.h"
#include "report/runner.h"

namespace tokyonet::report {

Table render_table01(Year year, int num_days,
                     const analysis::DatasetOverview& o) {
  static const char* kPaperLte[] = {"25%", "70%", "80%"};

  Table t({"year", "days", "android", "ios", "total", "LTE share",
           "paper LTE"});
  t.add_row({Value::integer(year_number(year)), Value::integer(num_days),
             Value::integer(o.n_android), Value::integer(o.n_ios),
             Value::integer(o.n_total), Value::pct(o.lte_traffic_share, 0),
             Value::text(kPaperLte[static_cast<int>(year)])});
  t.notes.push_back("paper panel: 1755 / 1676 / 1616 devices");
  return t;
}

namespace {

constexpr Year kEveryYear[] = {Year::Y2013, Year::Y2014, Year::Y2015};

Table table01(const FigureContext& ctx) {
  const auto& src = ctx.source();
  return render_table01(ctx.year(), src.num_days(), analysis::overview(src));
}

Table table02(const FigureContext& ctx) {
  const analysis::Demographics d = analysis::demographics(ctx.source());
  Table t({"year", "occupation", "share [%]"});
  for (int o = 0; o < kNumOccupations; ++o) {
    t.add_row({Value::integer(year_number(ctx.year())),
               Value::text(std::string(to_string(static_cast<Occupation>(o)))),
               Value::real(d.percent[static_cast<std::size_t>(o)], 1)});
  }
  t.notes.push_back(strf("respondents: %d", d.respondents));
  return t;
}

Table table08(const FigureContext& ctx) {
  const analysis::SurveyApUsage u = analysis::survey_ap_usage(ctx.source());
  static const char* kPaperYes[] = {"70.4/72.9/78.2", "31.6/25.6/28.0",
                                    "44.9/47.9/53.6"};
  Table t({"year", "location", "answer", "share [%]", "paper yes"});
  for (int loc = 0; loc < kNumSurveyLocations; ++loc) {
    const auto l = static_cast<std::size_t>(loc);
    const std::string name{to_string(static_cast<SurveyLocation>(loc))};
    const Value year = Value::integer(year_number(ctx.year()));
    t.add_row({year, Value::text(name), Value::text("yes"),
               Value::real(u.yes[l], 1), Value::text(kPaperYes[loc])});
    t.add_row({year, Value::text(name), Value::text("no"),
               Value::real(u.no[l], 1), Value()});
    t.add_row({year, Value::text(name), Value::text("NA"),
               Value::real(u.not_answered[l], 1), Value()});
  }
  return t;
}

Table table09(const FigureContext& ctx) {
  const analysis::SurveyReasons r = analysis::survey_reasons(ctx.source());
  Table t({"year", "location", "reason", "share [%]"});
  for (int loc = 0; loc < kNumSurveyLocations; ++loc) {
    const auto l = static_cast<std::size_t>(loc);
    const std::string name{to_string(static_cast<SurveyLocation>(loc))};
    for (int reason = 0; reason < kNumSurveyReasons; ++reason) {
      const auto re = static_cast<std::size_t>(reason);
      // Two answers only entered the questionnaire in 2014.
      const bool asked =
          ctx.year() != Year::Y2013 ||
          (reason != static_cast<int>(SurveyReason::SecurityIssue) &&
           reason != static_cast<int>(SurveyReason::LteIsEnough));
      t.add_row(
          {Value::integer(year_number(ctx.year())), Value::text(name),
           Value::text(std::string(to_string(static_cast<SurveyReason>(reason)))),
           asked ? Value::real(r.percent[l][re], 0) : Value()});
    }
    t.notes.push_back(strf("%s respondents: %d", name.c_str(),
                           r.respondents[l]));
  }
  t.notes.push_back(
      "paper trends: configuration pain shrinks (SIM-auth rollout); "
      "public-WiFi security concern grows to 35% by 2015; battery "
      "worries fade; 'LTE is enough' appears from 2014");
  return t;
}

}  // namespace

void register_overview_figures(FigureRegistry& r) {
  r.add({"table01", "dataset overview: devices per OS and LTE share",
         "Table 1 (dataset overview)",
         {kEveryYear[0], kEveryYear[1], kEveryYear[2]}, &table01, true});
  r.add({"table02", "user-survey demographics (occupation mix)",
         "Table 2 (user demographics)",
         {kEveryYear[0], kEveryYear[1], kEveryYear[2]}, &table02, true});
  r.add({"table08", "survey: self-reported WiFi AP usage per location",
         "Table 8 (survey: associated WiFi APs)",
         {kEveryYear[0], kEveryYear[1], kEveryYear[2]}, &table08, true});
  r.add({"table09", "survey: reasons for WiFi unavailability per location",
         "Table 9 (survey: reasons for unavailability)",
         {kEveryYear[0], kEveryYear[1], kEveryYear[2]}, &table09, true});
}

}  // namespace tokyonet::report
