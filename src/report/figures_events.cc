// Event-driven figures: iOS update timing (Fig 18), the soft bandwidth
// cap (Fig 19), and the §4.2 battery-level check.
#include "analysis/battery.h"
#include "analysis/cap.h"
#include "analysis/update.h"
#include "report/battery.h"
#include "report/figures.h"
#include "report/registry.h"
#include "report/runner.h"
#include "stats/distribution.h"

namespace tokyonet::report {

Table render_fig18(const analysis::UpdateDetection& det,
                   const analysis::UpdateTiming& u) {
  const stats::Ecdf all(u.delay_days_all);
  const stats::Ecdf no_home(u.delay_days_no_home);
  const auto n_ios = static_cast<double>(det.num_ios);
  const auto n_all = static_cast<double>(u.delay_days_all.size());

  Table t({"days since release", "CDF (all iOS)", "CDF (updated, no home AP)",
           "PDF (per day)"});
  for (double day = 0; day <= 15; ++day) {
    // CDF over the whole iOS population, as in the paper's Fig 18.
    const double cdf_all = n_ios > 0 ? all.at(day) * n_all / n_ios : 0;
    const double pdf =
        n_ios > 0 ? (all.at(day + 0.5) - all.at(day - 0.5)) * n_all / n_ios
                  : 0;
    t.add_row({Value::real(day, 0), Value::real(cdf_all, 3),
               Value::real(no_home.at(day), 3), Value::real(pdf, 3)});
  }

  t.notes.push_back(strf(
      "updated within the window: %.0f%% of iOS devices (paper 58%%)",
      100 * u.updated_share_all));
  t.notes.push_back(strf("updated on the first day: %.0f%% (paper ~10%%)",
                         100 * u.first_day_share));
  t.notes.push_back(strf("no-home-AP users updated: %.0f%% (paper 14%%)",
                         100 * u.updated_share_no_home));
  t.notes.push_back(strf(
      "median delay: home %.1f days vs no-home %.1f days (paper gap 3.5 "
      "days)",
      u.median_delay_home, u.median_delay_no_home));
  return t;
}

namespace {

Table fig18(const FigureContext& ctx) {
  const auto& det = ctx.analysis().updates();
  const analysis::UpdateTiming u = analysis::analyze_update_timing(
      ctx.analysis().devices(), det, ctx.analysis().classification());
  return render_fig18(det, u);
}

Table fig19(const FigureContext& ctx) {
  const analysis::CapAnalysis c = analysis::analyze_cap(
      ctx.source().n_devices(), ctx.analysis().days());

  Table t({"year", "daily / 3-day mean", "CDF capped", "CDF others"});
  for (const double ratio : {0.01, 0.03, 0.1, 0.3, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    t.add_row({Value::integer(year_number(ctx.year())), Value::real(ratio, 2),
               Value::real(c.ratio_capped.at(ratio), 3),
               Value::real(c.ratio_others.at(ratio), 3)});
  }
  t.notes.push_back(strf(
      "potentially capped users: %.1f%%; gap at ratio 0.5: %.2f (capped "
      "%.0f%% vs others %.0f%% below half)",
      100 * c.capped_user_share, c.gap_at_half, 100 * c.capped_below_half,
      100 * c.others_below_half));
  t.notes.push_back(
      "paper: capped users 0.8% (2014) / 1.4% (2015); gap at the median "
      "0.29 (2014) -> 0.15 (2015) after two carriers relaxed the policy");
  return t;
}

Table sec42(const FigureContext& ctx) {
  const analysis::BatteryAnalysis b =
      analysis::battery_analysis(ctx.source());
  const auto level = b.mean_level.ratio_series();
  static const char* kDays[] = {"Sat", "Sun", "Mon", "Tue", "Wed", "Thu",
                                "Fri"};

  Table t({"year", "day", "hour", "mean battery level"});
  for (int d = 0; d < 7; ++d) {
    for (int h = 0; h < 24; h += 6) {
      const auto i = static_cast<std::size_t>(d * 24 + h);
      t.add_row({Value::integer(year_number(ctx.year())),
                 Value::text(kDays[d]),
                 Value::text(std::to_string(h) + ":00"),
                 Value::real(level[i], 3)});
    }
  }
  t.notes.push_back(strf(
      "mean level %.2f; share of samples below 20%%: %.1f%%", b.mean,
      100 * b.low_share));
  t.notes.push_back(strf(
      "mean level WiFi-off %.2f vs WiFi-on %.2f   [paper §4.2: battery "
      "life was not a significant concern]",
      b.mean_wifi_off, b.mean_wifi_on));
  return t;
}

}  // namespace

void register_event_figures(FigureRegistry& r) {
  r.add({"fig18", "iOS 8.2 software update timing (CDF/PDF)",
         "Fig 18 (software update timing, Sec 3.7)", {Year::Y2015}, &fig18, true});
  r.add({"fig19", "soft bandwidth cap: daily vs 3-day-mean download CDFs",
         "Fig 19 (soft bandwidth cap effect, Sec 3.8)",
         {Year::Y2014, Year::Y2015}, &fig19, true});
  r.add({"sec42_battery", "weekly battery-level profile and WiFi-state check",
         "Sec 4.2 (battery levels vs WiFi state)",
         {Year::Y2013, Year::Y2014, Year::Y2015}, &sec42, true});
}

}  // namespace tokyonet::report
