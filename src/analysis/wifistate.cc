#include "analysis/wifistate.h"

#include <array>
#include <cstdint>
#include <span>

#include "analysis/query/scan.h"
#include "analysis/query/source.h"
#include "core/dataset_index.h"
#include "stats/simd.h"

namespace tokyonet::analysis {
namespace {

void merge(WifiStateProfiles& into, const WifiStateProfiles& from) noexcept {
  into.android_user.merge(from.android_user);
  into.android_off.merge(from.android_off);
  into.android_available.merge(from.android_available);
  into.ios_user.merge(from.ios_user);
}

// Exact integer counts behind ios_wifi_user_by_carrier(): associated
// and total sample counts per carrier for iOS devices. u64, so shard
// partials merge byte-identically.
struct CarrierCounts {
  std::array<std::uint64_t, kNumCarriers> assoc{}, total{};

  void merge(const CarrierCounts& p) noexcept {
    for (std::size_t c = 0; c < kNumCarriers; ++c) {
      assoc[c] += p.assoc[c];
      total[c] += p.total[c];
    }
  }
};

[[nodiscard]] CarrierCounts ios_wifi_user_counts(const Dataset& ds) {
  CarrierCounts out;

  const core::DatasetIndex* idx = ds.index();
  if (idx == nullptr) {
    for (const Sample& s : ds.samples) {
      const DeviceInfo& dev = ds.devices[value(s.device)];
      if (dev.os != Os::Ios) continue;
      const auto c = static_cast<std::size_t>(dev.carrier);
      out.total[c] += 1;
      out.assoc[c] += s.wifi_state == WifiState::Associated;
    }
    return out;
  }

  const std::span<const WifiState> state = idx->wifi_state();
  const auto* state_u8 = reinterpret_cast<const std::uint8_t*>(state.data());
  const std::size_t n_devices = ds.devices.size();
  const std::vector<CarrierCounts> partials = query::map_device_blocks(
      n_devices, [&](std::size_t d0, std::size_t d1) {
        CarrierCounts counts;
        for (std::size_t d = d0; d < d1; ++d) {
          const DeviceInfo& dev = ds.devices[d];
          if (dev.os != Os::Ios) continue;
          const auto c = static_cast<std::size_t>(dev.carrier);
          const std::size_t begin = idx->device_begin(d);
          const std::size_t end = idx->device_end(d);
          counts.total[c] += end - begin;
          counts.assoc[c] += stats::simd::count_eq_u8(
              state_u8 + begin, end - begin,
              static_cast<std::uint8_t>(WifiState::Associated));
        }
        return counts;
      });
  for (const CarrierCounts& p : partials) out.merge(p);
  return out;
}

[[nodiscard]] std::array<double, kNumCarriers> carrier_ratios(
    const CarrierCounts& counts) {
  std::array<double, kNumCarriers> out{};
  for (std::size_t c = 0; c < kNumCarriers; ++c) {
    if (counts.total[c] > 0) {
      out[c] = static_cast<double>(counts.assoc[c]) /
               static_cast<double>(counts.total[c]);
    }
  }
  return out;
}

}  // namespace

WifiStateProfiles compute_wifi_states(const Dataset& ds) {
  const CampaignCalendar& cal = ds.calendar;

  const core::DatasetIndex* idx = ds.index();
  if (idx == nullptr) {
    WifiStateProfiles p;
    for (const Sample& s : ds.samples) {
      const Os os = ds.devices[value(s.device)].os;
      const bool assoc = s.wifi_state == WifiState::Associated;
      if (os == Os::Android) {
        p.android_user.add(cal, s.bin, assoc ? 1.0 : 0.0, 1.0);
        p.android_off.add(cal, s.bin,
                          s.wifi_state == WifiState::Off ? 1.0 : 0.0, 1.0);
        p.android_available.add(
            cal, s.bin, s.wifi_state == WifiState::OnUnassociated ? 1.0 : 0.0,
            1.0);
      } else {
        p.ios_user.add(cal, s.bin, assoc ? 1.0 : 0.0, 1.0);
      }
    }
    return p;
  }

  // Branch-free counting pass: per block, one (hour-of-week, state)
  // counter bump per sample, then a single profile conversion per block.
  // The per-sample adds of the reference are 0/1 increments, so the
  // count-converted sums are the same exact integers in doubles: the
  // result is byte-identical to the serial reference at any thread
  // count and any device grouping.
  const std::span<const TimeBin> bin = idx->bin();
  const std::span<const WifiState> state = idx->wifi_state();
  const std::span<const std::uint16_t> how = idx->hour_of_week_table();
  const std::size_t n_devices = ds.devices.size();
  // Slot layout: 4 counters per hour-of-week, indexed by the WifiState
  // value (0 = Off, 1 = OnUnassociated, 2 = Associated; slot 3 unused).
  constexpr std::size_t kSlots =
      static_cast<std::size_t>(WeeklyProfile::kHours) * 4;
  const std::vector<WifiStateProfiles> partials = query::map_device_blocks(
      n_devices, [&](std::size_t d0, std::size_t d1) {
        std::array<std::uint32_t, kSlots> android{};
        std::array<std::uint32_t, kSlots> ios{};
        for (std::size_t d = d0; d < d1; ++d) {
          std::uint32_t* const cnt =
              (ds.devices[d].os == Os::Android ? android : ios).data();
          const std::size_t end = idx->device_end(d);
          for (std::size_t i = idx->device_begin(d); i < end; ++i) {
            ++cnt[(std::size_t{how[bin[i]]} << 2) |
                  static_cast<std::size_t>(state[i])];
          }
        }
        WifiStateProfiles p;
        for (int h = 0; h < WeeklyProfile::kHours; ++h) {
          const std::size_t s = static_cast<std::size_t>(h) << 2;
          const std::uint32_t a_off = android[s + 0];
          const std::uint32_t a_un = android[s + 1];
          const std::uint32_t a_as = android[s + 2];
          const std::uint32_t a_tot = a_off + a_un + a_as;
          if (a_tot > 0) {
            p.android_user.add_hour(h, a_as, a_tot);
            p.android_off.add_hour(h, a_off, a_tot);
            p.android_available.add_hour(h, a_un, a_tot);
          }
          const std::uint32_t i_as = ios[s + 2];
          const std::uint32_t i_tot = ios[s + 0] + ios[s + 1] + i_as;
          if (i_tot > 0) p.ios_user.add_hour(h, i_as, i_tot);
        }
        return p;
      });

  WifiStateProfiles p;
  for (const WifiStateProfiles& partial : partials) merge(p, partial);
  return p;
}

WifiStateProfiles compute_wifi_states(const query::DataSource& src) {
  if (const Dataset* ds = src.dataset_or_null()) {
    return compute_wifi_states(*ds);
  }
  // WeeklyProfile sums are exact integer counts in doubles, so merging
  // per-shard profiles in shard order matches the in-memory block merge.
  WifiStateProfiles out;
  src.fold<WifiStateProfiles>(
      [](const Dataset& block, std::size_t) {
        return compute_wifi_states(block);
      },
      [&](WifiStateProfiles&& p, std::size_t) { merge(out, p); });
  return out;
}

std::array<double, kNumCarriers> ios_wifi_user_by_carrier(const Dataset& ds) {
  return carrier_ratios(ios_wifi_user_counts(ds));
}

std::array<double, kNumCarriers> ios_wifi_user_by_carrier(
    const query::DataSource& src) {
  if (const Dataset* ds = src.dataset_or_null()) {
    return ios_wifi_user_by_carrier(*ds);
  }
  return carrier_ratios(src.reduce<CarrierCounts>(
      [](const Dataset& block, std::size_t) {
        return ios_wifi_user_counts(block);
      },
      [](CarrierCounts& acc, CarrierCounts&& p) { acc.merge(p); }));
}

}  // namespace tokyonet::analysis
