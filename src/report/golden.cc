#include "report/golden.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/registry.h"
#include "report/runner.h"
#include "report/table.h"

namespace tokyonet::report {
namespace {

/// Every (figure, year) rendering the harness covers, in registry
/// (id-sorted) order.
std::vector<std::pair<const FigureSpec*, std::optional<Year>>> combinations() {
  std::vector<std::pair<const FigureSpec*, std::optional<Year>>> out;
  for (const FigureSpec& spec : FigureRegistry::instance().figures()) {
    if (!spec.per_year()) {
      out.emplace_back(&spec, std::nullopt);
      continue;
    }
    for (const Year y : spec.years) out.emplace_back(&spec, y);
  }
  return out;
}

/// Human-readable pointer to the first differing line of two texts.
std::string first_diff(const std::string& expected, const std::string& actual) {
  std::istringstream a(expected);
  std::istringstream b(actual);
  std::string la, lb;
  int line = 0;
  while (true) {
    ++line;
    const bool has_a = static_cast<bool>(std::getline(a, la));
    const bool has_b = static_cast<bool>(std::getline(b, lb));
    if (!has_a && !has_b) return "contents identical";  // length-only diff
    if (la != lb || has_a != has_b) {
      return strf("line %d: golden '%s' vs actual '%s'", line,
                  has_a ? la.c_str() : "<eof>", has_b ? lb.c_str() : "<eof>");
    }
  }
}

}  // namespace

std::string golden_filename(const FigureSpec& spec, std::optional<Year> year) {
  if (!year) return spec.id + ".json";
  return spec.id + "_" + std::to_string(year_number(*year)) + ".json";
}

GoldenReport write_goldens(const std::filesystem::path& dir, Runner& runner) {
  GoldenReport report;
  std::filesystem::create_directories(dir);
  for (const auto& [spec, year] : combinations()) {
    ++report.figures;
    const std::string json = to_canonical_json(runner.run(*spec, year));
    const std::filesystem::path path = dir / golden_filename(*spec, year);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << json;
    if (!out) {
      ++report.mismatched;
      report.errors.push_back("failed to write " + path.string());
      continue;
    }
    ++report.written;
  }
  return report;
}

GoldenReport check_goldens(const std::filesystem::path& dir, Runner& runner) {
  GoldenReport report;
  for (const auto& [spec, year] : combinations()) {
    ++report.figures;
    const std::filesystem::path path = dir / golden_filename(*spec, year);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      ++report.mismatched;
      report.errors.push_back(spec->id + ": missing golden " + path.string());
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string expected = buf.str();
    const std::string actual = to_canonical_json(runner.run(*spec, year));
    if (actual != expected) {
      ++report.mismatched;
      std::string label = spec->id;
      if (year) label += " (" + std::to_string(year_number(*year)) + ")";
      report.errors.push_back(label + ": golden mismatch in " + path.string() +
                              " — " + first_diff(expected, actual));
    }
  }
  return report;
}

}  // namespace tokyonet::report
