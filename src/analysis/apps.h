// Application-category breakdown (§3.6, Tables 6/7): traffic share per
// Google-Play category, split by network type and location context
// (cellular at home / cellular elsewhere / WiFi at home / public WiFi).
// Android only — iOS reports no per-app traffic (§2).
#pragma once

#include <array>
#include <vector>

#include "analysis/classify.h"
#include "analysis/common.h"
#include "analysis/query/fwd.h"
#include "core/records.h"

namespace tokyonet::analysis {

/// The four contexts of Tables 6/7.
enum class AppContext : std::uint8_t {
  CellHome = 0,
  CellOther = 1,
  WifiHome = 2,
  WifiPublic = 3,
};
inline constexpr int kNumAppContexts = 4;

[[nodiscard]] std::string_view to_string(AppContext c) noexcept;

struct AppBreakdown {
  /// share[context][category], normalized per context.
  using Shares =
      std::array<std::array<double, kNumAppCategories>, kNumAppContexts>;
  Shares rx_share{};
  Shares tx_share{};

  struct Entry {
    AppCategory category;
    double share;
  };
  /// Top-n categories of one context, ranked by RX or TX share.
  [[nodiscard]] std::vector<Entry> top(AppContext context, bool rx,
                                       int n = 5) const;
};

/// Options: restrict to light users (the paper's §3.6 closing analysis).
struct AppBreakdownOptions {
  const std::vector<UserDay>* days = nullptr;       // needed when filtering
  const UserClassifier* classes = nullptr;          // needed when filtering
  bool light_users_only = false;
};

/// Computes Tables 6/7. Cellular traffic is located via the device's
/// inferred nighttime cell (`infer_home_cells`); WiFi via the AP class.
[[nodiscard]] AppBreakdown app_breakdown(const Dataset& ds,
                                         const ApClassification& cls,
                                         const std::vector<GeoCell>& home_cells,
                                         const AppBreakdownOptions& opt = {});
[[nodiscard]] AppBreakdown app_breakdown(const query::DataSource& src,
                                         const ApClassification& cls,
                                         const std::vector<GeoCell>& home_cells,
                                         const AppBreakdownOptions& opt = {});

}  // namespace tokyonet::analysis
