// Update flash crowd: the §3.7 case study as a runnable scenario. iOS
// only installs OS updates over WiFi, so a major release is a natural
// experiment in application-forced offloading — and a security story:
// users without home WiFi patch late.
//
//   $ ./build/examples/update_flashcrowd [scale]
//
// Besides reproducing the 2015 event, this example runs a *counterfactual*
// the paper could not: what if public-WiFi seekers did not exist (no
// user without home WiFi goes out of their way to fetch the update)?
#include <cstdio>
#include <cstdlib>

#include "analysis/classify.h"
#include "analysis/update.h"
#include "io/table.h"
#include "sim/simulator.h"
#include "stats/distribution.h"

using namespace tokyonet;

namespace {

analysis::UpdateTiming run_scenario(const ScenarioConfig& config) {
  const Dataset ds = sim::Simulator(config).run();
  analysis::UpdateDetectOptions detect;
  detect.min_day = config.update.release_day - 1;
  const auto detection = analysis::detect_updates(ds, detect);
  return analysis::analyze_update_timing(ds, detection,
                                         analysis::classify_aps(ds));
}

void print_timing(const analysis::UpdateTiming& t) {
  const stats::Ecdf all(t.delay_days_all);
  io::TextTable table({"days since release", "share of updaters"});
  for (double day : {0.0, 1.0, 2.0, 4.0, 7.0, 10.0, 14.0}) {
    table.add_row({io::TextTable::num(day, 0),
                   io::TextTable::pct(all.at(day), 0)});
  }
  table.print();
  std::printf("updated overall: %s of iOS devices; on day one: %s\n",
              io::TextTable::pct(t.updated_share_all, 0).c_str(),
              io::TextTable::pct(t.first_day_share, 0).c_str());
  std::printf("no-home-AP users updated: %s; median delay home %.1f d vs "
              "no-home %.1f d\n",
              io::TextTable::pct(t.updated_share_no_home, 0).c_str(),
              t.median_delay_home, t.median_delay_no_home);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  std::printf("=== iOS 8.2 flash crowd, as measured (2015, scale %.2f) ===\n",
              scale);
  ScenarioConfig baseline = scenario_config(Year::Y2015, scale);
  print_timing(run_scenario(baseline));

  std::printf("\n=== counterfactual: nobody seeks public WiFi for the "
              "update ===\n");
  ScenarioConfig no_seekers = baseline;
  no_seekers.update.public_seeker_frac = 0.0;
  print_timing(run_scenario(no_seekers));

  std::printf("\n=== counterfactual: a doubled flash (all home users eager) "
              "===\n");
  ScenarioConfig eager = baseline;
  eager.update.home_hazard *= 2.0;
  print_timing(run_scenario(eager));

  std::printf(
      "\nsecurity takeaway (§3.7): without home WiFi, devices stay\n"
      "unpatched for days longer — and removing the public-WiFi escape\n"
      "hatch (counterfactual 1) leaves those users unpatched entirely.\n");
  return 0;
}
