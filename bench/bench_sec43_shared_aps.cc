// §4.3: multi-provider public APs — physical boxes announcing several
// providers' ESSIDs on adjacent BSSIDs, detected the way the paper did.
#include "analysis/sharedap.h"
#include "common.h"

namespace {

using namespace tokyonet;

void BM_DetectSharedAps(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  const auto& cls = bench::classification(Year::Y2015);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::detect_shared_aps(ds, cls));
  }
}
BENCHMARK(BM_DetectSharedAps)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_FIGURE("sec43_shared_aps")
