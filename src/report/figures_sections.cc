// Implication sections: §4.1 home-offload impact and §4.3 shared
// multi-provider public APs.
#include "analysis/offload.h"
#include "analysis/sharedap.h"
#include "report/figures.h"
#include "report/registry.h"
#include "report/runner.h"

namespace tokyonet::report {
namespace {

Table sec41(const FigureContext& ctx) {
  const analysis::OffloadImpact o = analysis::offload_impact(
      ctx.source(), ctx.analysis().days(), ctx.analysis().classification());

  Table t({"year", "metric", "value", "paper 2015"});
  const Value year = Value::integer(year_number(ctx.year()));
  t.add_row({year, Value::text("median cellular RX [MB/day]"),
             Value::real(o.median_cell_rx_mb, 2), Value::text("36")});
  t.add_row({year, Value::text("median WiFi RX [MB/day]"),
             Value::real(o.median_wifi_rx_mb, 2), Value::text("51")});
  t.add_row({year, Value::text("WiFi share of smartphone traffic"),
             Value::pct(o.wifi_share, 0), Value::text("58%")});
  t.add_row({year, Value::text("WiFi : cellular ratio"),
             Value::real(o.wifi_to_cell_ratio, 2), Value::text("1.4")});
  t.add_row({year, Value::text("est. share of RBB volume"),
             Value::pct(o.est_rbb_share, 0), Value::text("28%")});
  t.add_row({year, Value::text("est. share of a home's daily download"),
             Value::pct(o.est_home_share, 0), Value::text("12%")});
  return t;
}

Table sec43(const FigureContext& ctx) {
  const analysis::SharedApAnalysis s = analysis::detect_shared_aps(
      ctx.source(), ctx.analysis().classification());

  Table t({"year", "associated public APs", "shared boxes",
           "networks on shared hardware"});
  t.add_row({Value::integer(year_number(ctx.year())),
             Value::integer(s.public_aps),
             Value::integer(static_cast<long long>(s.groups.size())),
             Value::pct(s.shared_share, 1)});
  t.notes.push_back(
      "paper (Sec 4.3): confirms such APs exist by checking similar "
      "BSSIDs assigned to different providers, and recommends them as "
      "the cost-effective path for free visitor WiFi toward the 2020 "
      "Olympics");
  return t;
}

}  // namespace

void register_section_figures(FigureRegistry& r) {
  r.add({"sec41_offload", "impact of home WiFi offload on RBB traffic",
         "Sec 4.1 (impact of home WiFi offload)",
         {Year::Y2013, Year::Y2014, Year::Y2015}, &sec41, true});
  r.add({"sec43_shared_aps", "multi-provider shared public APs",
         "Sec 4.3 (multi-provider shared APs)",
         {Year::Y2013, Year::Y2014, Year::Y2015}, &sec43, true});
}

}  // namespace tokyonet::report
