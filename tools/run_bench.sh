#!/usr/bin/env bash
# Runs every bench binary with google-benchmark JSON output and
# aggregates the per-kernel timings into BENCH_<date>.json, so the perf
# trajectory of the analysis kernels is recorded run over run.
#
# Usage: tools/run_bench.sh [build_dir] [out.json]
#   build_dir  defaults to ./build
#   out.json   defaults to BENCH_$(date +%Y%m%d).json in the repo root
#
# Respects TOKYONET_THREADS and TOKYONET_BENCH_SCALE; both are recorded
# in the output alongside each kernel's timings.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_$(date +%Y%m%d).json}"
bench_dir="${build_dir}/bench"

if [ ! -d "${bench_dir}" ]; then
  echo "error: ${bench_dir} not found — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

benches=()
for bin in "${bench_dir}"/bench_*; do
  [ -x "${bin}" ] || continue
  benches+=("${bin}")
done
if [ "${#benches[@]}" -eq 0 ]; then
  echo "error: no bench binaries under ${bench_dir}" >&2
  exit 1
fi

echo "running ${#benches[@]} bench binaries (threads=${TOKYONET_THREADS:-auto}," \
     "scale=${TOKYONET_BENCH_SCALE:-1.0})..."
for bin in "${benches[@]}"; do
  name="$(basename "${bin}")"
  echo "  ${name}"
  # The reproduction text goes to the log; the benchmark JSON goes to a
  # per-binary file for aggregation. A failing bench aborts the run: a
  # broken kernel must not silently vanish from the trajectory.
  "${bin}" --benchmark_out="${tmp_dir}/${name}.json" \
           --benchmark_out_format=json \
           > "${tmp_dir}/${name}.log" 2>&1 \
    || { echo "error: ${name} failed; log follows" >&2; \
         cat "${tmp_dir}/${name}.log" >&2; exit 1; }
done

python3 - "${tmp_dir}" "${out_json}" <<'PY'
import json, os, sys
from datetime import datetime, timezone

tmp_dir, out_json = sys.argv[1], sys.argv[2]
result = {
    "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    "threads": os.environ.get("TOKYONET_THREADS", "auto"),
    "bench_scale": os.environ.get("TOKYONET_BENCH_SCALE", "1.0"),
    "benches": {},
}
for fname in sorted(os.listdir(tmp_dir)):
    if not fname.endswith(".json"):
        continue
    with open(os.path.join(tmp_dir, fname)) as f:
        data = json.load(f)
    kernels = {
        b["name"]: {
            "real_time": b.get("real_time"),
            "cpu_time": b.get("cpu_time"),
            "time_unit": b.get("time_unit", "ns"),
            "iterations": b.get("iterations"),
        }
        for b in data.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }
    result["benches"][fname[: -len(".json")]] = {
        "context": {
            k: data.get("context", {}).get(k)
            for k in ("num_cpus", "mhz_per_cpu", "library_build_type")
        },
        "kernels": kernels,
    }
with open(out_json, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_json} ({len(result['benches'])} benches)")
PY
