// Descriptive statistics: means, medians, percentiles, growth rates.
#pragma once

#include <span>
#include <vector>

namespace tokyonet::stats {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance; 0 for fewer than two values.
[[nodiscard]] double variance(std::span<const double> xs) noexcept;

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// p-th percentile (p in [0,100]) of *sorted* data, with linear
/// interpolation between closest ranks. 0 for an empty span.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double p) noexcept;

/// p-th percentile of unsorted data (copies and sorts).
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Median of unsorted data.
[[nodiscard]] double median(std::span<const double> xs);

/// Summary bundle for one metric.
struct Summary {
  std::size_t n = 0;
  double mean = 0;
  double median = 0;
  double p05 = 0;
  double p95 = 0;
  double min = 0;
  double max = 0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Geometric annual growth rate between the first and last value of a
/// yearly series: (last/first)^(1/(n-1)) - 1. This reproduces the AGR
/// column of the paper's Table 3 (e.g. 57.9 -> 126.5 over 2013-2015 gives
/// 48%). Returns 0 if the series is shorter than 2 or first <= 0.
[[nodiscard]] double annual_growth_rate(std::span<const double> yearly) noexcept;

/// Ordinary least-squares fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;
};

[[nodiscard]] LinearFit linear_fit(std::span<const double> xs,
                                   std::span<const double> ys) noexcept;

}  // namespace tokyonet::stats
