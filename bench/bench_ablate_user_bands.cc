// Ablation: the paper's user-class definitions (§2: light = 40-60th
// percentile of daily download, heavy = top 5%). Sweeps both bands and
// reports how the Fig 7 WiFi-traffic-ratio separation responds.
#include "analysis/ratios.h"
#include "common.h"

namespace {

using namespace tokyonet;

void print_reproduction() {
  bench::print_header("bench_ablate_user_bands",
                      "ablation of §2's light/heavy user definitions");
  const Dataset& ds = bench::campaign(Year::Y2015);
  const auto& days = bench::days(Year::Y2015);

  io::TextTable t({"light band", "heavy band", "light WiFi ratio",
                   "heavy WiFi ratio", "separation"});
  struct Bands {
    double lo, hi, heavy;
  };
  for (const Bands& b : {Bands{30, 70, 95}, Bands{40, 60, 95},
                         Bands{45, 55, 95}, Bands{40, 60, 99},
                         Bands{40, 60, 90}}) {
    const analysis::UserClassifier classes(days, b.lo, b.hi, b.heavy);
    const analysis::WifiRatios r =
        analysis::compute_wifi_ratios(ds, days, classes);
    const double light = r.traffic_light.mean_ratio();
    const double heavy = r.traffic_heavy.mean_ratio();
    char light_band[32], heavy_band[32];
    std::snprintf(light_band, sizeof light_band, "%.0f-%.0f pct", b.lo, b.hi);
    std::snprintf(heavy_band, sizeof heavy_band, "top %.0f%%", 100 - b.heavy);
    t.add_row({light_band, heavy_band, io::TextTable::pct(light, 0),
               io::TextTable::pct(heavy, 0),
               io::TextTable::num(heavy - light, 2)});
  }
  t.print();
  std::printf("\nreading: the heavy-vs-light offloading separation "
              "(Fig 7) is robust to the exact band boundaries — widening "
              "the light band or trimming the heavy tail moves the means "
              "only slightly.\n");
}

void BM_RatiosUnderBands(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  const auto& days = bench::days(Year::Y2015);
  const analysis::UserClassifier classes(
      days, 40, 60, static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::compute_wifi_ratios(ds, days, classes));
  }
}
BENCHMARK(BM_RatiosUnderBands)->Arg(90)->Arg(95)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_MAIN()
