// Fig 19: effect of the soft bandwidth cap — CDFs of daily cellular
// download relative to the user's previous-3-day mean, potentially
// capped users vs others, 2014 and 2015.
#include "analysis/cap.h"
#include "common.h"

namespace {

using namespace tokyonet;

void BM_CapAnalysis(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  const auto& days = bench::days(Year::Y2015);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze_cap(ds, days));
  }
}
BENCHMARK(BM_CapAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_FIGURE("fig19")
