// Runner: the one execution path for registered figures.
//
// Resolves campaign datasets through the on-disk campaign cache
// (sim::cached_campaign; TOKYONET_CACHE_DIR), builds exactly one
// analysis::AnalysisContext per year (std::call_once, shared by every
// figure), and renders any FigureSpec as a report::Table. The CLI, the
// bench binaries (bench/common.cc routes its old per-binary lazy
// caches here) and the golden harness all drive figures through this
// class.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "analysis/context.h"
#include "analysis/query/source.h"
#include "core/records.h"
#include "io/shard_store.h"
#include "io/snapshot.h"
#include "report/registry.h"

namespace tokyonet::report {

class Runner {
 public:
  struct Options {
    /// Panel scale passed to scenario_config().
    double scale = 1.0;
    /// Simulation seed override (default: the scenario's).
    std::optional<std::uint64_t> seed;
    /// Print "tokyonet-cache: hit|miss <path>" lines when the campaign
    /// cache is enabled (run_bench.sh counts them).
    bool announce_cache = false;
  };

  Runner() = default;
  explicit Runner(const Options& opt) : opt_(opt) {}

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  [[nodiscard]] const Options& options() const noexcept { return opt_; }

  /// Memoized campaign for `year`: simulated (or cache-loaded) at most
  /// once per Runner, thread-safely. Throws std::logic_error when the
  /// year runs out of core (adopt_shards_out_of_core / adopt_source) —
  /// figures flagged FigureSpec::out_of_core never call this.
  [[nodiscard]] const Dataset& dataset(Year year);

  /// Memoized analysis context over `year`'s campaign (in-memory or
  /// out-of-core; analysis(year).source() is the backend-agnostic view).
  [[nodiscard]] const analysis::AnalysisContext& analysis(Year year);

  /// True when `year`'s campaign was installed as an out-of-core source
  /// (dataset(year) would throw).
  [[nodiscard]] bool out_of_core(Year year) const noexcept {
    return external_src_[static_cast<int>(year)] != nullptr;
  }

  /// Installs an externally loaded dataset (CSV import, snapshot) as
  /// `year`'s campaign. Must be called before the first dataset(year)
  /// resolution for that year.
  void adopt(Year year, Dataset ds);

  /// Opens a sharded campaign store (io/shard_store.h), materializes it
  /// back into one in-memory Dataset and adopt()s the result as
  /// `year`'s campaign. Fails if the store's campaign year disagrees
  /// with `year`. `resident_shards` >= 1 overlaps the next shard's load
  /// with the current shard's concatenation (io::ShardedDataset::
  /// materialize); 0 loads strictly sequentially.
  [[nodiscard]] io::SnapshotResult adopt_shards(
      Year year, const std::filesystem::path& dir,
      std::size_t resident_shards = 1);

  /// Opens a sharded campaign store and installs it as `year`'s
  /// campaign WITHOUT materializing it: every figure flagged
  /// FigureSpec::out_of_core then runs through a query::ShardedSource
  /// holding at most `resident_shards + 1` shards resident (exactly one
  /// at resident_shards = 0), byte-identical to the in-memory run.
  /// Must precede the first dataset()/analysis() resolution for `year`.
  [[nodiscard]] io::SnapshotResult adopt_shards_out_of_core(
      Year year, const std::filesystem::path& dir,
      std::size_t resident_shards = 1);

  /// Installs an externally owned source (must outlive the Runner) as
  /// `year`'s campaign. Same contract as adopt_shards_out_of_core.
  void adopt_source(Year year, const analysis::query::DataSource& src);

  /// Renders one figure. For per-year figures `year` must be set (any
  /// campaign year is accepted — `spec.years` lists the paper's
  /// defaults, not a hard restriction); for longitudinal figures it
  /// must be nullopt. The result carries the spec's id/title/paper_ref
  /// and the rendered year.
  [[nodiscard]] Table run(const FigureSpec& spec, std::optional<Year> year);

  /// Renders a figure for every year in `spec.years` and stacks the
  /// per-year rows into one table (figures emit a leading "year"
  /// column, so the stack reads like the paper's multi-year tables).
  /// Longitudinal figures render once, unchanged.
  [[nodiscard]] Table run_stacked(const FigureSpec& spec);

 private:
  /// Builds `year`'s context (and dataset, when in memory) exactly once.
  void resolve(Year year);

  Options opt_;

  std::once_flag once_[kNumYears];
  std::unique_ptr<Dataset> adopted_[kNumYears];
  std::unique_ptr<Dataset> ds_[kNumYears];
  std::unique_ptr<io::ShardedDataset> store_[kNumYears];
  std::unique_ptr<analysis::query::ShardedSource> shard_src_[kNumYears];
  const analysis::query::DataSource* external_src_[kNumYears] = {};
  std::unique_ptr<analysis::AnalysisContext> ctx_[kNumYears];
};

}  // namespace tokyonet::report
