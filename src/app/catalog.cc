#include "app/catalog.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>

namespace tokyonet::app {
namespace {

// Categories with explicitly modelled shares. Everything else shares a
// small residual weight.
constexpr std::array<AppCategory, 15> kMajor{
    AppCategory::Browser,       AppCategory::Social,
    AppCategory::Video,         AppCategory::Communication,
    AppCategory::News,          AppCategory::Game,
    AppCategory::Music,         AppCategory::Shopping,
    AppCategory::Download,      AppCategory::Entertainment,
    AppCategory::Tools,         AppCategory::Productivity,
    AppCategory::Lifestyle,     AppCategory::Health,
    AppCategory::Business,
};

// Expected download-volume share per (year, context, major category).
// Calibrated qualitatively against Tables 6/7: cellular is
// browsing-led; home-WiFi video explodes from 2014; public WiFi shifts
// from pure browsing (2013) toward video/download (2014-15).
// Rows follow kMajor's order; each row sums to <= 1, remainder goes to
// the minor-category tail.
using ShareRow = std::array<double, kMajor.size()>;

constexpr ShareRow kCell2013{.38, .073, .057, .062, .030, .050, .030, .030,
                             .015, .040, .030, .020, .030, .012, .012};
constexpr ShareRow kCell2014{.36, .063, .074, .074, .062, .055, .028, .030,
                             .018, .035, .028, .022, .032, .014, .014};
constexpr ShareRow kCell2015{.28, .079, .110, .095, .058, .060, .028, .030,
                             .022, .032, .026, .025, .035, .016, .016};

constexpr ShareRow kWifiHome2013{.28, .068, .040, .043, .035, .045, .032,
                                 .028, .020, .035, .028, .035, .028, .010,
                                 .010};
constexpr ShareRow kWifiHome2014{.207, .040, .304, .065, .060, .040, .025,
                                 .020, .047, .025, .020, .052, .020, .010,
                                 .010};
constexpr ShareRow kWifiHome2015{.200, .047, .254, .074, .040, .040, .025,
                                 .020, .111, .022, .018, .060, .020, .010,
                                 .010};

constexpr ShareRow kWifiPublic2013{.441, .040, .021, .030, .029, .030, .020,
                                   .018, .012, .025, .020, .025, .033, .010,
                                   .012};
constexpr ShareRow kWifiPublic2014{.219, .028, .138, .035, .025, .030, .018,
                                   .015, .225, .020, .015, .040, .049, .032,
                                   .015};
constexpr ShareRow kWifiPublic2015{.240, .030, .196, .036, .025, .030, .018,
                                   .015, .099, .020, .015, .030, .041, .020,
                                   .020};

constexpr ShareRow kWifiOther2013{.36, .060, .030, .055, .030, .040, .025,
                                  .025, .015, .030, .025, .030, .030, .010,
                                  .015};
constexpr ShareRow kWifiOther2014{.30, .050, .110, .060, .040, .040, .022,
                                  .020, .080, .025, .020, .045, .028, .014,
                                  .016};
constexpr ShareRow kWifiOther2015{.27, .050, .150, .060, .035, .040, .022,
                                  .018, .070, .022, .018, .050, .028, .014,
                                  .018};

const ShareRow& share_row(Year year, Context ctx) noexcept {
  const int y = static_cast<int>(year);
  switch (ctx) {
    case Context::CellHome:
    case Context::CellOther: {
      static constexpr const ShareRow* rows[] = {&kCell2013, &kCell2014,
                                                 &kCell2015};
      return *rows[y];
    }
    case Context::WifiHome: {
      static constexpr const ShareRow* rows[] = {&kWifiHome2013,
                                                 &kWifiHome2014,
                                                 &kWifiHome2015};
      return *rows[y];
    }
    case Context::WifiPublic: {
      static constexpr const ShareRow* rows[] = {&kWifiPublic2013,
                                                 &kWifiPublic2014,
                                                 &kWifiPublic2015};
      return *rows[y];
    }
    case Context::WifiOther: {
      static constexpr const ShareRow* rows[] = {&kWifiOther2013,
                                                 &kWifiOther2014,
                                                 &kWifiOther2015};
      return *rows[y];
    }
  }
  return kCell2015;
}

constexpr std::uint64_t mb_to_bytes(double mb) noexcept {
  return mb <= 0 ? 0 : static_cast<std::uint64_t>(mb * 1e6);
}

// Categories not explicitly modelled; drawn uniformly when the alias
// table lands on the collapsed minor-tail pseudo-entry.
constexpr std::array<AppCategory, 10> kMinor{
    AppCategory::Travel,      AppCategory::Education,
    AppCategory::Finance,     AppCategory::Photography,
    AppCategory::Sports,      AppCategory::Weather,
    AppCategory::Books,       AppCategory::Medical,
    AppCategory::Transport,   AppCategory::Comics,
};

constexpr std::uint32_t saturate_u32(std::uint64_t v) noexcept {
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(v, 0xFFFFFFFFull));
}

}  // namespace

double category_tx_ratio(AppCategory category) noexcept {
  switch (category) {
    case AppCategory::Browser: return 0.10;
    case AppCategory::Social: return 0.35;
    case AppCategory::Video: return 0.04;
    case AppCategory::Communication: return 0.45;
    case AppCategory::News: return 0.05;
    case AppCategory::Game: return 0.15;
    case AppCategory::Music: return 0.05;
    case AppCategory::Shopping: return 0.12;
    case AppCategory::Download: return 0.02;
    case AppCategory::Entertainment: return 0.10;
    case AppCategory::Tools: return 0.20;
    case AppCategory::Productivity: return 2.20;  // online-storage sync
    case AppCategory::Lifestyle: return 0.12;
    case AppCategory::Health: return 0.40;
    case AppCategory::Business: return 0.45;
    case AppCategory::OsUpdate: return 0.005;
    default: return 0.15;
  }
}

AppMixer::AppMixer(Year year) : year_(year), tx_noise_(0.0, 0.5) {
  // Per-scenario table build: each context's 15 major shares plus the
  // collapsed minor tail become one alias table, so per-bin category
  // draws cost one uniform instead of a weight rescan.
  for (int c = 0; c < kNumContexts; ++c) {
    const ShareRow& row = share_row(year, static_cast<Context>(c));
    std::array<double, kMajor.size() + 1> weights{};
    double major_total = 0;
    for (std::size_t i = 0; i < kMajor.size(); ++i) {
      weights[i] = row[i];
      major_total += row[i];
    }
    weights[kMajor.size()] = std::max(0.0, 1.0 - major_total);
    category_table_[static_cast<std::size_t>(c)] = stats::AliasTable(weights);
  }
  static constexpr double kCountWeights[] = {0.50, 0.35, 0.15};
  count_table_ = stats::AliasTable(kCountWeights);
}

double AppMixer::expected_share(Context context,
                                AppCategory category) const noexcept {
  const ShareRow& row = share_row(year_, context);
  for (std::size_t i = 0; i < kMajor.size(); ++i) {
    if (kMajor[i] == category) return row[i];
  }
  double major_total = 0;
  for (double w : row) major_total += w;
  const int minor_count = kNumAppCategories - static_cast<int>(kMajor.size());
  return std::max(0.0, 1.0 - major_total) / minor_count;
}

std::uint64_t AppMixer::mix(Context context, double demand_mb,
                            stats::PhiloxRng& rng,
                            std::vector<AppTraffic>& out) const {
  if (demand_mb <= 0) return 0;

  // Draw how many categories are active this bin.
  const std::size_t k = 1 + count_table_.draw(rng);

  // Pick k distinct categories with probability proportional to share
  // (minor tail collapsed into one pseudo-entry). Rejecting repeats
  // against the full alias table samples exactly the renormalized
  // remaining-weight distribution, without rebuilding any table.
  const stats::AliasTable& table =
      category_table_[static_cast<std::size_t>(context)];
  if (k == 1) {
    // Half of all calls land here: a single category takes the whole
    // demand, so the taken[] bookkeeping, the rejection check (a first
    // draw can never repeat) and the split normalization all vanish.
    // The draw sequence — category, optional minor pick, tx noise — is
    // the same as the general path's, so values match draw for draw.
    const std::size_t idx = table.draw(rng);
    const AppCategory cat = idx < kMajor.size()
                                ? kMajor[idx]
                                : kMinor[rng.uniform_int(kMinor.size())];
    const double tx_mb =
        demand_mb * category_tx_ratio(cat) * tx_noise_.draw(rng);
    AppTraffic at;
    at.category = cat;
    at.rx_bytes = saturate_u32(mb_to_bytes(demand_mb));
    at.tx_bytes = saturate_u32(mb_to_bytes(tx_mb));
    out.push_back(at);
    return at.tx_bytes;
  }
  bool taken[kMajor.size() + 1] = {};
  std::array<AppCategory, 3> cats{};
  std::array<double, 3> split{};
  std::size_t chosen = 0;
  for (std::size_t draw = 0; draw < k && chosen < 3; ++draw) {
    std::size_t idx = table.draw(rng);
    for (int tries = 0; taken[idx] && tries < 24; ++tries) {
      idx = table.draw(rng);
    }
    if (taken[idx]) break;  // pathological rejection streak: stop early
    taken[idx] = true;
    AppCategory cat;
    if (idx < kMajor.size()) {
      cat = kMajor[idx];
    } else {
      // A minor category: uniform over the ones not explicitly modelled.
      cat = kMinor[rng.uniform_int(kMinor.size())];
    }
    cats[chosen] = cat;
    // With one active category the split normalizes to 1.0 no matter
    // what is drawn, so skip the draw entirely (k == 1 is half of all
    // mix calls).
    split[chosen] = k > 1 ? rng.uniform32(0.3, 1.0) : 1.0;
    ++chosen;
  }

  double split_total = 0;
  for (std::size_t i = 0; i < chosen; ++i) split_total += split[i];

  std::uint64_t tx_total = 0;
  for (std::size_t i = 0; i < chosen; ++i) {
    const double rx_mb = demand_mb * split[i] / split_total;
    const double tx_mb =
        rx_mb * category_tx_ratio(cats[i]) * tx_noise_.draw(rng);
    AppTraffic at;
    at.category = cats[i];
    at.rx_bytes = saturate_u32(mb_to_bytes(rx_mb));
    at.tx_bytes = saturate_u32(mb_to_bytes(tx_mb));
    out.push_back(at);
    tx_total += at.tx_bytes;
  }
  return tx_total;
}

}  // namespace tokyonet::app
