#include "analysis/wifistate.h"

#include <algorithm>
#include <cstdint>
#include <span>

#include "core/dataset_index.h"
#include "core/parallel.h"

namespace tokyonet::analysis {
namespace {

// Devices per parallel_map item. Fixed, so the per-block partial
// grouping never depends on the thread count; all accumulations below
// are 0/1 (integer) sums, exact in doubles, so the block merge is
// byte-identical to the serial per-sample reference.
constexpr std::size_t kDeviceBlock = 16;

void merge(WifiStateProfiles& into, const WifiStateProfiles& from) noexcept {
  into.android_user.merge(from.android_user);
  into.android_off.merge(from.android_off);
  into.android_available.merge(from.android_available);
  into.ios_user.merge(from.ios_user);
}

}  // namespace

WifiStateProfiles compute_wifi_states(const Dataset& ds) {
  const CampaignCalendar& cal = ds.calendar;

  const core::DatasetIndex* idx = ds.index();
  if (idx == nullptr) {
    WifiStateProfiles p;
    for (const Sample& s : ds.samples) {
      const Os os = ds.devices[value(s.device)].os;
      const bool assoc = s.wifi_state == WifiState::Associated;
      if (os == Os::Android) {
        p.android_user.add(cal, s.bin, assoc ? 1.0 : 0.0, 1.0);
        p.android_off.add(cal, s.bin,
                          s.wifi_state == WifiState::Off ? 1.0 : 0.0, 1.0);
        p.android_available.add(
            cal, s.bin, s.wifi_state == WifiState::OnUnassociated ? 1.0 : 0.0,
            1.0);
      } else {
        p.ios_user.add(cal, s.bin, assoc ? 1.0 : 0.0, 1.0);
      }
    }
    return p;
  }

  const std::span<const TimeBin> bin = idx->bin();
  const std::span<const WifiState> state = idx->wifi_state();
  const std::span<const std::uint16_t> how = idx->hour_of_week_table();
  const std::size_t n_devices = ds.devices.size();
  const std::size_t n_blocks = (n_devices + kDeviceBlock - 1) / kDeviceBlock;
  const std::vector<WifiStateProfiles> partials =
      core::parallel_map(n_blocks, [&](std::size_t b) {
        WifiStateProfiles p;
        const std::size_t d0 = b * kDeviceBlock;
        const std::size_t d1 = std::min(d0 + kDeviceBlock, n_devices);
        for (std::size_t d = d0; d < d1; ++d) {
          const bool android = ds.devices[d].os == Os::Android;
          const std::size_t end = idx->device_end(d);
          for (std::size_t i = idx->device_begin(d); i < end; ++i) {
            const int h = how[bin[i]];
            const WifiState ws = state[i];
            if (android) {
              p.android_user.add_hour(
                  h, ws == WifiState::Associated ? 1.0 : 0.0, 1.0);
              p.android_off.add_hour(h, ws == WifiState::Off ? 1.0 : 0.0, 1.0);
              p.android_available.add_hour(
                  h, ws == WifiState::OnUnassociated ? 1.0 : 0.0, 1.0);
            } else {
              p.ios_user.add_hour(h, ws == WifiState::Associated ? 1.0 : 0.0,
                                  1.0);
            }
          }
        }
        return p;
      });

  WifiStateProfiles p;
  for (const WifiStateProfiles& partial : partials) merge(p, partial);
  return p;
}

std::array<double, kNumCarriers> ios_wifi_user_by_carrier(const Dataset& ds) {
  std::array<double, kNumCarriers> assoc{};
  std::array<double, kNumCarriers> total{};

  const core::DatasetIndex* idx = ds.index();
  if (idx == nullptr) {
    for (const Sample& s : ds.samples) {
      const DeviceInfo& dev = ds.devices[value(s.device)];
      if (dev.os != Os::Ios) continue;
      const auto c = static_cast<std::size_t>(dev.carrier);
      total[c] += 1;
      assoc[c] += s.wifi_state == WifiState::Associated;
    }
  } else {
    const std::span<const WifiState> state = idx->wifi_state();
    struct Counts {
      std::array<std::uint64_t, kNumCarriers> assoc{}, total{};
    };
    const std::size_t n_devices = ds.devices.size();
    const std::size_t n_blocks = (n_devices + kDeviceBlock - 1) / kDeviceBlock;
    const std::vector<Counts> partials =
        core::parallel_map(n_blocks, [&](std::size_t b) {
          Counts counts;
          const std::size_t d0 = b * kDeviceBlock;
          const std::size_t d1 = std::min(d0 + kDeviceBlock, n_devices);
          for (std::size_t d = d0; d < d1; ++d) {
            const DeviceInfo& dev = ds.devices[d];
            if (dev.os != Os::Ios) continue;
            const auto c = static_cast<std::size_t>(dev.carrier);
            const std::size_t begin = idx->device_begin(d);
            const std::size_t end = idx->device_end(d);
            counts.total[c] += end - begin;
            std::uint64_t a = 0;
            for (std::size_t i = begin; i < end; ++i) {
              a += state[i] == WifiState::Associated;
            }
            counts.assoc[c] += a;
          }
          return counts;
        });
    for (const Counts& p : partials) {
      for (std::size_t c = 0; c < kNumCarriers; ++c) {
        assoc[c] += static_cast<double>(p.assoc[c]);
        total[c] += static_cast<double>(p.total[c]);
      }
    }
  }

  std::array<double, kNumCarriers> out{};
  for (int c = 0; c < kNumCarriers; ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (total[i] > 0) out[i] = assoc[i] / total[i];
  }
  return out;
}

}  // namespace tokyonet::analysis
