// Traffic-volume figures (Figs 2-5): aggregate weekly series, per-user
// daily CDFs, and the cellular-vs-WiFi user-type split.
#include "analysis/aggregate.h"
#include "analysis/usertype.h"
#include "analysis/volumes.h"
#include "report/battery.h"
#include "report/figures.h"
#include "report/registry.h"
#include "report/runner.h"

namespace tokyonet::report {

Table render_fig02(const CampaignCalendar& cal, int num_days,
                   const analysis::HourlySeries& cell_rx,
                   const analysis::HourlySeries& cell_tx,
                   const analysis::HourlySeries& wifi_rx,
                   const analysis::HourlySeries& wifi_tx,
                   const analysis::WeekSplit& cell_split,
                   const analysis::WeekSplit& wifi_split) {
  Table t({"date", "hour", "Cell TX [Mbps]", "Cell RX [Mbps]",
           "WiFi TX [Mbps]", "WiFi RX [Mbps]"});
  for (int day = 0; day < 8 && day < num_days; ++day) {
    for (int hour = 0; hour < 24; hour += 3) {
      const auto i = static_cast<std::size_t>(day * 24 + hour);
      t.add_row({Value::text(cal.day_label(day)),
                 Value::text(std::to_string(hour) + ":00"),
                 Value::real(cell_tx.mbps[i], 2), Value::real(cell_rx.mbps[i], 2),
                 Value::real(wifi_tx.mbps[i], 2),
                 Value::real(wifi_rx.mbps[i], 2)});
    }
  }

  const double wifi = wifi_rx.total_mb() + wifi_tx.total_mb();
  const double cell = cell_rx.total_mb() + cell_tx.total_mb();
  t.notes.push_back(strf(
      "WiFi share of total volume: %.0f%% (paper: 67%% in 2015)",
      100 * wifi / (wifi + cell)));
  t.notes.push_back(strf(
      "weekday vs weekend mean rate [Mbps]: cellular %.1f vs %.1f, "
      "WiFi %.1f vs %.1f   [paper: cellular drops on weekends, WiFi rises]",
      cell_split.weekday_mbps, cell_split.weekend_mbps,
      wifi_split.weekday_mbps, wifi_split.weekend_mbps));
  return t;
}

Table render_fig05(Year year, const analysis::UserTypeStats& s,
                   const stats::LogHist2d& heat) {
  Table t({"year", "cellular-intensive", "wifi-intensive", "mixed",
           "mixed above diagonal"});
  t.add_row({Value::integer(year_number(year)),
             Value::pct(s.cellular_intensive_frac, 0),
             Value::pct(s.wifi_intensive_frac, 0), Value::pct(s.mixed_frac, 0),
             Value::pct(s.mixed_above_diagonal_frac, 0)});

  // The log-log density map itself is a plot; pin its mass distribution.
  int occupied = 0;
  double peak = 0;
  for (int y = 0; y < heat.bins(); ++y) {
    for (int x = 0; x < heat.bins(); ++x) {
      const double c = heat.count(x, y);
      if (c > 0) ++occupied;
      if (c > peak) peak = c;
    }
  }
  t.notes.push_back(strf(
      "heat map: %d of %d bins occupied, peak bin %.0f of %.0f user-days",
      occupied, heat.bins() * heat.bins(), peak, heat.total()));
  t.notes.push_back(
      "paper: cellular-intensive 35% (2013) -> 22% (2015); wifi-intensive "
      "~8%; 55% of mixed users above the diagonal");
  return t;
}

namespace {

Table fig02(const FigureContext& ctx) {
  const auto& src = ctx.source();
  const analysis::AllStreamSums sums = analysis::aggregate_all_streams(src);
  const auto series = [&](analysis::Stream s) {
    return analysis::hourly_series_from_sums(
        sums.hour_sums[static_cast<std::size_t>(s)]);
  };
  const auto cell_rx = series(analysis::Stream::CellRx);
  const auto cell_tx = series(analysis::Stream::CellTx);
  const auto wifi_rx = series(analysis::Stream::WifiRx);
  const auto wifi_tx = series(analysis::Stream::WifiTx);
  const analysis::WeekSplit cell_split = analysis::weekday_weekend_split(
      cell_rx, src.calendar(), src.num_days());
  const analysis::WeekSplit wifi_split = analysis::weekday_weekend_split(
      wifi_rx, src.calendar(), src.num_days());
  return render_fig02(src.calendar(), src.num_days(), cell_rx, cell_tx,
                      wifi_rx, wifi_tx, cell_split, wifi_split);
}

Table fig03(const FigureContext& ctx) {
  const analysis::DailyVolumeCdfs cdfs =
      analysis::daily_volume_cdfs(ctx.analysis().days());
  Table t({"year", "MB", "CDF all RX", "CDF all TX"});
  for (const double mb :
       {1.0, 3.0, 10.0, 30.0, 57.9, 100.0, 300.0, 1000.0, 3000.0}) {
    t.add_row({Value::integer(year_number(ctx.year())), Value::real(mb, 1),
               Value::real(cdfs.all_rx.at(mb), 3),
               Value::real(cdfs.all_tx.at(mb), 3)});
  }
  t.notes.push_back(strf(
      "RX/TX median ratio: %.1fx (paper: RX ~5x TX in 2015)",
      cdfs.all_rx.quantile(0.5) / cdfs.all_tx.quantile(0.5)));
  return t;
}

Table fig04(const FigureContext& ctx) {
  const auto& days = ctx.analysis().days();
  const analysis::DailyVolumeCdfs cdfs = analysis::daily_volume_cdfs(days);

  Table t({"MB", "WiFi RX", "WiFi TX", "Cell RX", "Cell TX"});
  for (const double mb :
       {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0}) {
    t.add_row({Value::real(mb, 1), Value::real(cdfs.wifi_rx.at(mb), 3),
               Value::real(cdfs.wifi_tx.at(mb), 3),
               Value::real(cdfs.cell_rx.at(mb), 3),
               Value::real(cdfs.cell_tx.at(mb), 3)});
  }

  const analysis::DailyVolumeFacts f = analysis::daily_volume_facts(days);
  t.notes.push_back(strf("idle cellular interfaces: %.1f%% (paper 8%%)",
                         100 * f.zero_cell_share));
  t.notes.push_back(strf("idle WiFi interfaces: %.1f%% (paper 20%%)",
                         100 * f.zero_wifi_share));
  t.notes.push_back(strf("user-days over the 1 GB/3-day cap: %.2f%% "
                         "(paper 1.4%%)",
                         100 * f.over_cap_share));
  t.notes.push_back(strf("top heavy hitter: %.1f GB in one day (paper 11 GB)",
                         f.max_daily_rx_mb / 1000.0));
  return t;
}

Table fig05(const FigureContext& ctx) {
  const auto& days = ctx.analysis().days();
  const analysis::UserTypeStats s =
      analysis::user_type_stats(ctx.source().n_devices(), days);
  const auto heat = analysis::user_day_heatmap(days, 3);
  return render_fig05(ctx.year(), s, heat);
}

}  // namespace

void register_volume_figures(FigureRegistry& r) {
  r.add({"fig02", "aggregated traffic volume over the first campaign week",
         "Fig 2 (aggregated traffic volume, 2015)", {Year::Y2015}, &fig02, true});
  r.add({"fig03", "CDFs of daily total traffic per user (RX and TX)",
         "Fig 3 (CDFs of daily total traffic per user)",
         {Year::Y2013, Year::Y2014, Year::Y2015}, &fig03, true});
  r.add({"fig04", "CDFs of daily traffic per interface type + headline facts",
         "Fig 4 (daily volume per type, 2015)", {Year::Y2015}, &fig04, true});
  r.add({"fig05", "user-day heat map mass + cellular/WiFi user-type split",
         "Fig 5 (daily traffic volume per user)", {Year::Y2013, Year::Y2015},
         &fig05, true});
}

}  // namespace tokyonet::report
