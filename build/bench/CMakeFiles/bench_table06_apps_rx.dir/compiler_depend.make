# Empty compiler generated dependencies file for bench_table06_apps_rx.
# This may be replaced when dependencies are built.
