#include "stats/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace tokyonet::stats {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  Rng parent(7);
  const Rng child1 = parent.fork(5);
  // Drawing from the parent must not change what fork(5) would yield
  // for a parent in the same state; but a *new* parent in the same
  // initial state forks identically.
  Rng parent2(7);
  const Rng child2 = parent2.fork(5);
  Rng c1 = child1, c2 = child2;
  for (int i = 0; i < 100; ++i) ASSERT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LE(same, 1);
}

class RngMoments : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngMoments, UniformInUnitIntervalWithCorrectMean) {
  Rng rng(GetParam());
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST_P(RngMoments, NormalMeanAndVariance) {
  Rng rng(GetParam());
  double sum = 0, ss = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    ss += x * x;
  }
  const double mean = sum / n;
  const double var = ss / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST_P(RngMoments, LognormalMedian) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) xs.push_back(rng.lognormal(2.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], std::exp(2.0), 0.3);
}

TEST_P(RngMoments, ExponentialMean) {
  Rng rng(GetParam());
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 20000, 0.5, 0.03);
}

TEST_P(RngMoments, PoissonMean) {
  Rng rng(GetParam());
  double small = 0, large = 0;
  for (int i = 0; i < 20000; ++i) {
    small += rng.poisson(3.0);
    large += rng.poisson(80.0);  // normal-approximation branch
  }
  EXPECT_NEAR(small / 20000, 3.0, 0.1);
  EXPECT_NEAR(large / 20000, 80.0, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngMoments,
                         ::testing::Values(1ull, 42ull, 20150228ull,
                                           0xDEADBEEFull));

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(11);
  const double w[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.35);
}

TEST(Rng, ZipfRankOneMostFrequent) {
  Rng rng(13);
  int counts[11] = {};
  for (int i = 0; i < 10000; ++i) {
    const std::size_t r = rng.zipf(10, 1.0);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 10u);
    ++counts[r];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

}  // namespace
}  // namespace tokyonet::stats
