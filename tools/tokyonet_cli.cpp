// tokyonet command-line tool.
//
//   tokyonet fig list [--ids]
//       Enumerate the figure registry: every paper figure/table
//       reproduction with its id, years, paper reference and whether it
//       can run out-of-core (the `ooc` column).
//
//   tokyonet fig run <id> [--year Y] [--scale S] [--seed N]
//                    [--format text|csv|json] [--shard-dir DIR]
//                    [--out-of-core] [--resident-shards K]
//       Render one registered reproduction. Without --year a per-year
//       figure is stacked over all its paper years; longitudinal
//       figures take no --year. With --shard-dir the campaign comes
//       from a sharded store instead of simulation
//       (--resident-shards >= 1 overlaps shard loads with the rebase).
//       Adding --out-of-core renders the figure by scanning shards with
//       bounded memory (never materializing the campaign); figures
//       whose kernels need the resident dataset are rejected with exit
//       2 and the list of supported ids.
//
//   tokyonet fig all [--format text|csv|json] [--shard-dir DIR]
//                    [--out-of-core] [--resident-shards K]
//   tokyonet fig all --update-goldens [--goldens DIR]
//   tokyonet fig all --check-goldens [--goldens DIR]
//       Render the whole catalog, or write / byte-compare the golden
//       canonical-JSON files (always at the pinned golden scale).
//       With --shard-dir --out-of-core, render every out-of-core
//       capable figure for the store's campaign year with bounded
//       memory.
//
//   tokyonet simulate --year 2015 [--scale S] [--seed N] --out DIR
//       Simulate a campaign and export it as CSV (observable data only).
//
//   tokyonet report (--in DIR | --shard-dir DIR [--out-of-core]
//                    [--resident-shards K] | --year Y [--scale S])
//       Print the headline reproductions for a dataset through the
//       figure registry (Table 1/4, user types, offload opportunity,
//       and for 2015 the update event). --shard-dir reads a sharded
//       campaign store; with --out-of-core the battery is computed by
//       scanning shards with bounded memory instead of materializing
//       the campaign: --resident-shards K (default 1, or
//       TOKYONET_RESIDENT_SHARDS) pipelines the scan with at most K+1
//       shards resident — 0 restores the strict one-shard-at-a-time
//       scan — and the tables are byte-identical at every K.
//
//   tokyonet years [--scale S]
//       Headline report for all three campaigns plus the longitudinal
//       figures (Fig 1, Table 3).
//
//   tokyonet snapshot save --year Y [--scale S] [--seed N] --out FILE
//   tokyonet snapshot load --in FILE
//   tokyonet snapshot info --in PATH
//   tokyonet snapshot warm [--scale S]
//       Binary campaign snapshots (io/snapshot.h): persist a simulated
//       campaign, reload it (mmap, verified), inspect a file, or
//       pre-populate the TOKYONET_CACHE_DIR campaign cache for all
//       three years. `info` on a shard directory prints and verifies
//       its manifest instead.
//
//   tokyonet snapshot shard --year Y [--scale S] [--seed N] --out DIR
//                           [--shards N] [--resident-shards K]
//       Stream a campaign simulation into a sharded store
//       (io/shard_store.h) without ever materializing it: block i+1
//       simulates while block i serializes, so peak memory is two
//       shards (with --resident-shards 0, strictly sequential: one) and
//       million-device campaigns fit in a few GB. --shards 0 sizes
//       shards automatically (~2048 devices each).
//
//   tokyonet ingest serve --port P [--host H] [--shards N] [--queue N]
//                         [--shed] [--sessions N]
//       Run a TCP ingest server until N sessions have ended, then print
//       the incremental analysis summary and counters.
//
//   tokyonet ingest replay --year Y --port P [--host H] [--scale S]
//                          [--seed N] [--rate R] [--batch B]
//                          [--multiplier M]
//       Stream a campaign to a running ingest server over TCP.
//
//   tokyonet ingest stats --year Y [--scale S] [--seed N] [--shards N]
//                         [--queue N] [--shed] [--rate R] [--batch B]
//                         [--multiplier M] [--no-verify]
//       Loopback replay: stream a campaign through an in-process ingest
//       server, print throughput/counters, and verify the incremental
//       results are byte-identical to the batch kernels.
//
// Exit codes: 0 success; 1 runtime failure; 2 bad usage or malformed
// flags; 3 load/IO failure (missing input, unreadable file); 4
// verification failure (golden mismatch, corrupt snapshot, incremental
// != batch).
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "analysis/incremental.h"
#include "analysis/query/source.h"
#include "ingest/replay.h"
#include "ingest/server.h"
#include "ingest/tcp.h"
#include "io/csv.h"
#include "io/shard_store.h"
#include "io/snapshot.h"
#include "io/table.h"
#include "report/golden.h"
#include "report/registry.h"
#include "report/runner.h"
#include "report/sharded.h"
#include "report/table.h"
#include "sim/simulator.h"
#include "sim/stream_runner.h"

using namespace tokyonet;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitFailure = 1;
constexpr int kExitUsage = 2;
constexpr int kExitLoad = 3;
constexpr int kExitVerify = 4;

struct Args {
  std::string command;
  std::string subcommand;
  std::optional<int> year;
  double scale = 0.5;
  std::optional<std::uint64_t> seed;
  std::string in_dir;
  std::string out_dir;
  std::string shard_dir;
  bool out_of_core = false;
  // The K of DESIGN.md §5j: 0 = strict sequential shard scan, 1 =
  // prefetch one shard ahead, K >= 2 = scan K shards concurrently.
  // Defaults from TOKYONET_RESIDENT_SHARDS; --resident-shards overrides.
  std::size_t resident_shards = io::resident_shards_from_env(1);

  // fig flags
  std::string figure_id;
  std::string format = "text";
  std::string golden_dir = "tests/golden";
  bool update_goldens = false;
  bool check_goldens = false;
  bool ids_only = false;

  // ingest flags
  std::string host = "127.0.0.1";
  int port = 0;
  int shards = 4;
  int queue = 64;
  bool shed = false;
  int sessions = 1;
  double rate = 0.0;
  int batch = 512;
  int multiplier = 1;
  bool no_verify = false;
};

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tokyonet fig list [--ids]\n"
               "  tokyonet fig run <id> [--year Y] [--scale S] [--seed N] "
               "[--format text|csv|json] [--shard-dir DIR] "
               "[--out-of-core] [--resident-shards K]\n"
               "  tokyonet fig all [--format text|csv|json] "
               "[--shard-dir DIR] [--out-of-core] [--resident-shards K]\n"
               "  tokyonet fig all --update-goldens|--check-goldens "
               "[--goldens DIR]\n"
               "  tokyonet simulate --year 2013|2014|2015 [--scale S] "
               "[--seed N] --out DIR\n"
               "  tokyonet report (--in DIR | --shard-dir DIR "
               "[--out-of-core] [--resident-shards K] | --year Y "
               "[--scale S])\n"
               "  tokyonet years [--scale S]\n"
               "  tokyonet snapshot save --year Y [--scale S] [--seed N] "
               "--out FILE\n"
               "  tokyonet snapshot shard --year Y [--scale S] [--seed N] "
               "--out DIR [--shards N] [--resident-shards K]\n"
               "  tokyonet snapshot load --in FILE\n"
               "  tokyonet snapshot info --in PATH\n"
               "  tokyonet snapshot warm [--scale S]   "
               "(needs TOKYONET_CACHE_DIR)\n"
               "  tokyonet ingest serve --port P [--host H] [--shards N] "
               "[--queue N] [--shed] [--sessions N]\n"
               "  tokyonet ingest replay --year Y --port P [--host H] "
               "[--scale S] [--seed N] [--rate R] [--batch B] "
               "[--multiplier M]\n"
               "  tokyonet ingest stats --year Y [--scale S] [--seed N] "
               "[--shards N] [--queue N] [--shed] [--rate R] [--batch B] "
               "[--multiplier M] [--no-verify]\n"
               "exit codes: 0 ok, 1 failure, 2 usage, 3 load/IO, "
               "4 verification\n");
  return kExitUsage;
}

// Strict numeric flag parsing: the whole token must parse, so
// "--year 20x5" or "--scale abc" are rejected instead of silently
// truncating (the old std::atoi/atof behavior).
bool parse_int_flag(const char* flag, const char* value, int& out) {
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < INT_MIN ||
      parsed > INT_MAX) {
    std::fprintf(stderr, "invalid integer for %s: '%s'\n", flag, value);
    return false;
  }
  out = static_cast<int>(parsed);
  return true;
}

bool parse_u64_flag(const char* flag, const char* value, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || value[0] == '-') {
    std::fprintf(stderr, "invalid unsigned integer for %s: '%s'\n", flag,
                 value);
    return false;
  }
  out = static_cast<std::uint64_t>(parsed);
  return true;
}

bool parse_double_flag(const char* flag, const char* value, double& out) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "invalid number for %s: '%s'\n", flag, value);
    return false;
  }
  out = parsed;
  return true;
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  int first_flag = 2;
  if (args.command == "snapshot" || args.command == "ingest" ||
      args.command == "fig") {
    if (argc < 3) return false;
    args.subcommand = argv[2];
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (!flag.empty() && flag[0] != '-') {
      // The only positional operand is `fig run <id>`.
      if (args.command == "fig" && args.subcommand == "run" &&
          args.figure_id.empty()) {
        args.figure_id = flag;
        continue;
      }
      std::fprintf(stderr, "unexpected argument: %s\n", flag.c_str());
      return false;
    }
    if (flag == "--year") {
      const char* v = next();
      if (v == nullptr) return false;
      int year = 0;
      if (!parse_int_flag("--year", v, year)) return false;
      args.year = year;
    } else if (flag == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!parse_double_flag("--scale", v, args.scale)) return false;
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      std::uint64_t seed = 0;
      if (!parse_u64_flag("--seed", v, seed)) return false;
      args.seed = seed;
    } else if (flag == "--in") {
      const char* v = next();
      if (v == nullptr) return false;
      args.in_dir = v;
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out_dir = v;
    } else if (flag == "--shard-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      args.shard_dir = v;
    } else if (flag == "--out-of-core") {
      args.out_of_core = true;
    } else if (flag == "--resident-shards") {
      const char* v = next();
      if (v == nullptr) return false;
      int k = 0;
      if (!parse_int_flag("--resident-shards", v, k) || k < 0) return false;
      args.resident_shards = static_cast<std::size_t>(k);
    } else if (flag == "--format") {
      const char* v = next();
      if (v == nullptr) return false;
      args.format = v;
    } else if (flag == "--goldens") {
      const char* v = next();
      if (v == nullptr) return false;
      args.golden_dir = v;
    } else if (flag == "--update-goldens") {
      args.update_goldens = true;
    } else if (flag == "--check-goldens") {
      args.check_goldens = true;
    } else if (flag == "--ids") {
      args.ids_only = true;
    } else if (flag == "--host") {
      const char* v = next();
      if (v == nullptr) return false;
      args.host = v;
    } else if (flag == "--port") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!parse_int_flag("--port", v, args.port)) return false;
    } else if (flag == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!parse_int_flag("--shards", v, args.shards)) return false;
    } else if (flag == "--queue") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!parse_int_flag("--queue", v, args.queue)) return false;
    } else if (flag == "--sessions") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!parse_int_flag("--sessions", v, args.sessions)) return false;
    } else if (flag == "--rate") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!parse_double_flag("--rate", v, args.rate)) return false;
    } else if (flag == "--batch") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!parse_int_flag("--batch", v, args.batch)) return false;
    } else if (flag == "--multiplier") {
      const char* v = next();
      if (v == nullptr) return false;
      if (!parse_int_flag("--multiplier", v, args.multiplier)) return false;
    } else if (flag == "--shed") {
      args.shed = true;
    } else if (flag == "--no-verify") {
      args.no_verify = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

std::optional<Year> to_year(int y) {
  if (y < 2013 || y > 2015) return std::nullopt;
  return static_cast<Year>(y - 2013);
}

report::Runner::Options runner_options(const Args& args) {
  report::Runner::Options opt;
  opt.scale = args.scale;
  opt.seed = args.seed;
  opt.announce_cache = true;
  return opt;
}

// A snapshot (or shard store) that isn't there is a load error (3); one
// that exists but fails header/checksum validation is a verification
// error (4).
int snapshot_failure_code(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) ? kExitVerify : kExitLoad;
}

// Installs the campaign held by shard directory `dir` into `runner` —
// materialized, or with `out_of_core` as a query::ShardedSource the
// figures scan with bounded memory — and reports its year. Returns
// kExitOk or the exit code to fail with.
int adopt_shard_dir(report::Runner& runner, const std::string& dir,
                    std::size_t resident_shards, bool out_of_core,
                    Year& out_year) {
  io::ShardManifest m;
  const io::SnapshotResult r = io::read_shard_manifest(dir, m);
  if (!r.ok()) {
    std::fprintf(stderr, "shard store: %s\n", r.error.c_str());
    return snapshot_failure_code(dir);
  }
  const auto year = to_year(m.year);
  if (!year) {
    std::fprintf(stderr, "shard store %s: campaign year %d out of range\n",
                 dir.c_str(), m.year);
    return kExitVerify;
  }
  const io::SnapshotResult a =
      out_of_core
          ? runner.adopt_shards_out_of_core(*year, dir, resident_shards)
          : runner.adopt_shards(*year, dir, resident_shards);
  if (!a.ok()) {
    std::fprintf(stderr, "shard store: %s\n", a.error.c_str());
    return snapshot_failure_code(dir);
  }
  out_year = *year;
  return kExitOk;
}

// The non-negotiable precondition of --out-of-core figure rendering: a
// store to scan, and a figure whose kernels are shard-decomposable.
// Prints the supported ids on rejection so the caller can pick one.
int reject_non_ooc_figure(const report::FigureSpec& spec) {
  std::fprintf(stderr,
               "%s cannot run out-of-core (its kernels need the resident "
               "dataset); supported ids:\n",
               spec.id.c_str());
  for (const report::FigureSpec& s :
       report::FigureRegistry::instance().figures()) {
    if (s.out_of_core) std::fprintf(stderr, "  %s\n", s.id.c_str());
  }
  return kExitUsage;
}

// ---------------------------------------------------------------------
// fig: the figure registry.

std::string years_label(const report::FigureSpec& spec) {
  if (!spec.per_year()) return "longitudinal";
  std::string out;
  for (Year y : spec.years) {
    if (!out.empty()) out += ' ';
    out += std::string(to_string(y));
  }
  return out;
}

int cmd_fig_list(const Args& args) {
  const auto& registry = report::FigureRegistry::instance();
  if (args.ids_only) {
    for (const report::FigureSpec& spec : registry.figures()) {
      std::printf("%s\n", spec.id.c_str());
    }
    return kExitOk;
  }
  io::TextTable table({"id", "years", "ooc", "paper ref", "title"});
  for (const report::FigureSpec& spec : registry.figures()) {
    table.add_row({spec.id, years_label(spec), spec.out_of_core ? "yes" : "-",
                   spec.paper_ref, spec.title});
  }
  table.print();
  std::printf("\n%zu reproductions; render one with "
              "`tokyonet fig run <id>`\n",
              registry.size());
  return kExitOk;
}

bool render_table(const report::Table& table, const std::string& format) {
  if (format == "text") {
    std::fputs(report::to_text(table).c_str(), stdout);
  } else if (format == "csv") {
    std::fputs(report::to_csv(table).c_str(), stdout);
  } else if (format == "json") {
    std::fputs(report::to_canonical_json(table).c_str(), stdout);
    std::printf("\n");
  } else {
    std::fprintf(stderr, "unknown --format '%s' (text|csv|json)\n",
                 format.c_str());
    return false;
  }
  return true;
}

int cmd_fig_run(const Args& args) {
  if (args.figure_id.empty()) return usage();
  const report::FigureSpec* spec =
      report::FigureRegistry::instance().find(args.figure_id);
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "unknown figure id '%s'; see `tokyonet fig list`\n",
                 args.figure_id.c_str());
    return kExitUsage;
  }
  if (args.out_of_core) {
    if (args.shard_dir.empty()) {
      std::fprintf(stderr, "--out-of-core needs --shard-dir\n");
      return kExitUsage;
    }
    if (!spec->out_of_core) return reject_non_ooc_figure(*spec);
  }
  std::optional<Year> year;
  if (args.year) {
    if (!spec->per_year()) {
      std::fprintf(stderr, "%s is longitudinal; it takes no --year\n",
                   spec->id.c_str());
      return kExitUsage;
    }
    year = to_year(*args.year);
    if (!year) {
      std::fprintf(stderr, "year must be 2013..2015\n");
      return kExitUsage;
    }
  }
  report::Runner runner(runner_options(args));
  if (!args.shard_dir.empty()) {
    Year store_year;
    const int rc = adopt_shard_dir(runner, args.shard_dir,
                                   args.resident_shards, args.out_of_core,
                                   store_year);
    if (rc != kExitOk) return rc;
    if (args.out_of_core && year && *year != store_year) {
      // The other years would have to be simulated in memory, defeating
      // the bounded-memory point of --out-of-core.
      std::fprintf(stderr,
                   "--out-of-core renders the store's campaign year only\n");
      return kExitUsage;
    }
    // A per-year figure defaults to the store's campaign year instead
    // of stacking (the other years would have to be simulated).
    if (spec->per_year() && !year) year = store_year;
  }
  const report::Table table = (spec->per_year() && !year)
                                  ? runner.run_stacked(*spec)
                                  : runner.run(*spec, year);
  return render_table(table, args.format) ? kExitOk : kExitUsage;
}

int cmd_fig_all(const Args& args) {
  if (args.update_goldens || args.check_goldens) {
    // Goldens are pinned at a fixed scale and the scenario's own seed;
    // --scale/--seed do not apply here.
    report::Runner::Options opt;
    opt.scale = report::kGoldenScale;
    report::Runner runner(opt);
    if (args.update_goldens) {
      const report::GoldenReport r =
          report::write_goldens(args.golden_dir, runner);
      for (const std::string& e : r.errors) {
        std::fprintf(stderr, "golden: %s\n", e.c_str());
      }
      std::printf("wrote %d golden files (%d figure renderings) to %s\n",
                  r.written, r.figures, args.golden_dir.c_str());
      return r.errors.empty() ? kExitOk : kExitLoad;
    }
    const report::GoldenReport r =
        report::check_goldens(args.golden_dir, runner);
    for (const std::string& e : r.errors) {
      std::fprintf(stderr, "golden: %s\n", e.c_str());
    }
    if (!r.ok()) {
      std::fprintf(stderr, "golden check FAILED: %d of %d renderings "
                   "mismatched under %s\n",
                   r.mismatched, r.figures, args.golden_dir.c_str());
      return kExitVerify;
    }
    std::printf("golden check OK: %d renderings match %s\n", r.figures,
                args.golden_dir.c_str());
    return kExitOk;
  }

  if (args.out_of_core && args.shard_dir.empty()) {
    std::fprintf(stderr, "--out-of-core needs --shard-dir\n");
    return kExitUsage;
  }
  report::Runner runner(runner_options(args));
  std::optional<Year> store_year;
  if (!args.shard_dir.empty()) {
    Year y;
    const int rc = adopt_shard_dir(runner, args.shard_dir,
                                   args.resident_shards, args.out_of_core, y);
    if (rc != kExitOk) return rc;
    store_year = y;
  }
  const auto& registry = report::FigureRegistry::instance();
  bool first = true;
  for (const report::FigureSpec& spec : registry.figures()) {
    // Out of core, the catalog narrows to the shard-decomposable
    // figures for the store's campaign year — everything else would
    // materialize or simulate a campaign.
    if (args.out_of_core &&
        (!spec.out_of_core || !spec.applies_to(*store_year))) {
      continue;
    }
    if (!first && args.format == "text") std::printf("\n");
    first = false;
    const report::Table table = args.out_of_core
                                    ? runner.run(spec, *store_year)
                                    : runner.run_stacked(spec);
    if (!render_table(table, args.format)) return kExitUsage;
  }
  return kExitOk;
}

int cmd_fig(const Args& args) {
  if (args.subcommand == "list") return cmd_fig_list(args);
  if (args.subcommand == "run") return cmd_fig_run(args);
  if (args.subcommand == "all") return cmd_fig_all(args);
  return usage();
}

// ---------------------------------------------------------------------
// simulate / report / years.

Dataset make_dataset(const Args& args, Year year) {
  ScenarioConfig config = scenario_config(year, args.scale);
  if (args.seed) config.seed = *args.seed;
  // Consults the on-disk campaign cache when TOKYONET_CACHE_DIR is set;
  // otherwise this is a plain simulation.
  sim::CampaignCacheStatus status;
  Dataset ds = sim::cached_campaign(config, &status);
  if (status.enabled) {
    std::printf("tokyonet-cache: %s %s\n", status.hit ? "hit" : "miss",
                status.path.string().c_str());
    if (!status.detail.empty()) {
      std::fprintf(stderr, "tokyonet-cache: note: %s\n",
                   status.detail.c_str());
    }
  }
  return ds;
}

// The headline reproductions for one campaign year, rendered through
// the registry: dataset/panel overview, AP census, user types, offload
// opportunity, and (2015) the iOS update event.
void print_report(report::Runner& runner, Year year) {
  const Dataset& ds = runner.dataset(year);
  std::printf("dataset: %s campaign, %d days, %zu devices, %zu samples\n",
              std::string(to_string(ds.year)).c_str(), ds.num_days(),
              ds.devices.size(), ds.samples.size());

  const auto& registry = report::FigureRegistry::instance();
  static constexpr const char* kHeadline[] = {
      "table01", "table04", "fig05", "sec35_opportunity"};
  for (const char* id : kHeadline) {
    const report::FigureSpec* spec = registry.find(id);
    if (spec == nullptr) continue;
    std::printf("\n");
    std::fputs(report::to_text(runner.run(*spec, year)).c_str(), stdout);
  }
  if (year == Year::Y2015) {
    if (const report::FigureSpec* spec = registry.find("fig18")) {
      std::printf("\n");
      std::fputs(report::to_text(runner.run(*spec, year)).c_str(), stdout);
    }
  }
  std::printf("\n(full catalog: tokyonet fig list)\n");
}

int cmd_simulate(const Args& args) {
  if (!args.year || args.out_dir.empty()) return usage();
  const auto year = to_year(*args.year);
  if (!year) {
    std::fprintf(stderr, "year must be 2013..2015\n");
    return kExitUsage;
  }
  const Dataset ds = make_dataset(args, *year);
  const io::CsvResult r = io::save_dataset_csv(ds, args.out_dir);
  if (!r.ok()) {
    std::fprintf(stderr, "export failed: %s\n", r.error.c_str());
    return kExitLoad;
  }
  std::printf("wrote %zu devices / %zu samples to %s\n", ds.devices.size(),
              ds.samples.size(), args.out_dir.c_str());
  return kExitOk;
}

// The headline battery computed out-of-core: the registry's battery
// figures rendered over a query::ShardedSource with at most
// --resident-shards + 1 shards resident (one when K = 0). Same tables
// (byte-identical canonical JSON) as the in-memory report at every K,
// bounded memory.
int cmd_report_out_of_core(const Args& args) {
  io::ShardedDataset store;
  const io::SnapshotResult r = io::ShardedDataset::open(args.shard_dir, store);
  if (!r.ok()) {
    std::fprintf(stderr, "shard store: %s\n", r.error.c_str());
    return snapshot_failure_code(args.shard_dir);
  }
  const io::ShardManifest& m = store.manifest();
  std::printf("dataset: %s campaign, %d days, %" PRIu64 " devices, %" PRIu64
              " samples (%zu shards, out-of-core)\n",
              std::string(to_string(store.year())).c_str(), m.num_days,
              m.n_devices, m.n_samples, store.num_shards());

  std::vector<report::Table> tables;
  const io::SnapshotResult b = report::run_sharded_battery(
      store, tables, {args.resident_shards});
  if (!b.ok()) {
    std::fprintf(stderr, "out-of-core battery failed: %s\n", b.error.c_str());
    return snapshot_failure_code(args.shard_dir);
  }
  for (const report::Table& t : tables) {
    std::printf("\n");
    std::fputs(report::to_text(t).c_str(), stdout);
  }
  std::printf("\n(full catalog: tokyonet fig list)\n");
  return kExitOk;
}

int cmd_report(const Args& args) {
  if (args.out_of_core && args.shard_dir.empty()) {
    std::fprintf(stderr, "--out-of-core needs --shard-dir\n");
    return kExitUsage;
  }
  if (!args.shard_dir.empty() && args.out_of_core) {
    return cmd_report_out_of_core(args);
  }
  report::Runner runner(runner_options(args));
  Year year;
  if (!args.shard_dir.empty()) {
    const int rc = adopt_shard_dir(runner, args.shard_dir,
                                   args.resident_shards, false, year);
    if (rc != kExitOk) return rc;
  } else if (!args.in_dir.empty()) {
    Dataset ds;
    const io::CsvResult r = io::load_dataset_csv(args.in_dir, ds);
    if (!r.ok()) {
      std::fprintf(stderr, "load failed: %s\n", r.error.c_str());
      return kExitLoad;
    }
    year = ds.year;
    runner.adopt(year, std::move(ds));
  } else if (args.year) {
    const auto y = to_year(*args.year);
    if (!y) {
      std::fprintf(stderr, "year must be 2013..2015\n");
      return kExitUsage;
    }
    year = *y;
  } else {
    return usage();
  }
  print_report(runner, year);
  return kExitOk;
}

int cmd_years(const Args& args) {
  report::Runner runner(runner_options(args));
  for (Year y : kAllYears) {
    std::printf("================ %s ================\n",
                std::string(to_string(y)).c_str());
    print_report(runner, y);
    std::printf("\n");
  }
  // The longitudinal figures reuse the campaigns already materialized
  // by the per-year reports above.
  const auto& registry = report::FigureRegistry::instance();
  for (const char* id : {"fig01", "table03"}) {
    if (const report::FigureSpec* spec = registry.find(id)) {
      std::fputs(report::to_text(runner.run(*spec, std::nullopt)).c_str(),
                 stdout);
      std::printf("\n");
    }
  }
  return kExitOk;
}

// ---------------------------------------------------------------------
// snapshot.

int cmd_snapshot_save(const Args& args) {
  if (!args.year || args.out_dir.empty()) return usage();
  const auto year = to_year(*args.year);
  if (!year) {
    std::fprintf(stderr, "year must be 2013..2015\n");
    return kExitUsage;
  }
  ScenarioConfig config = scenario_config(*year, args.scale);
  if (args.seed) config.seed = *args.seed;
  const Dataset ds = sim::Simulator(config).run();
  const io::SnapshotResult r =
      io::save_snapshot(ds, args.out_dir, scenario_hash(config));
  if (!r.ok()) {
    std::fprintf(stderr, "snapshot save failed: %s\n", r.error.c_str());
    return kExitLoad;
  }
  std::printf("wrote %zu devices / %zu samples to %s\n", ds.devices.size(),
              ds.samples.size(), args.out_dir.c_str());
  return kExitOk;
}

int cmd_snapshot_shard(const Args& args) {
  if (!args.year || args.out_dir.empty()) return usage();
  const auto year = to_year(*args.year);
  if (!year) {
    std::fprintf(stderr, "year must be 2013..2015\n");
    return kExitUsage;
  }
  ScenarioConfig config = scenario_config(*year, args.scale);
  if (args.seed) config.seed = *args.seed;
  sim::StreamCampaignOptions opts;
  opts.shards = args.shards < 0 ? 0 : static_cast<std::size_t>(args.shards);
  opts.announce = true;
  // --resident-shards 0 forces the strictly sequential one-block writer;
  // any K >= 1 keeps the default simulate/serialize pipeline (two
  // blocks resident).
  opts.pipeline = args.resident_shards >= 1;
  const sim::StreamCampaignResult r =
      sim::stream_campaign(config, args.out_dir, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "snapshot shard failed: %s\n", r.error.c_str());
    return kExitLoad;
  }
  std::printf("streamed %" PRIu64 " devices / %" PRIu64 " samples to %s "
              "(%zu shards)\n",
              r.manifest.n_devices, r.manifest.n_samples,
              args.out_dir.c_str(), r.manifest.shards.size());
  return kExitOk;
}

int cmd_snapshot_load(const Args& args) {
  if (args.in_dir.empty()) return usage();
  Dataset ds;
  io::SnapshotInfo info;
  const io::SnapshotResult r = io::load_snapshot(args.in_dir, ds, {}, &info);
  if (!r.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n", r.error.c_str());
    return snapshot_failure_code(args.in_dir);
  }
  std::printf("loaded %s: %s campaign, %d days, %zu devices, %zu samples "
              "(%s)\n",
              args.in_dir.c_str(), std::string(to_string(ds.year)).c_str(),
              ds.num_days(), ds.devices.size(), ds.samples.size(),
              info.mapped ? "mmap" : "owned read");
  return kExitOk;
}

// `snapshot info` on a shard directory: print the manifest, then check
// every shard file against it. A directory that exists but fails
// manifest or shard verification (truncated shard, missing manifest
// after a killed writer, checksum flip) exits 4; a missing path 3.
int cmd_shard_info(const Args& args) {
  io::ShardManifest m;
  const io::SnapshotResult r = io::read_shard_manifest(args.in_dir, m);
  if (!r.ok()) {
    std::fprintf(stderr, "snapshot info failed: %s\n", r.error.c_str());
    return snapshot_failure_code(args.in_dir);
  }
  std::printf("shard store %s\n", args.in_dir.c_str());
  std::printf("  store version  %u (snapshot v%u)\n", m.version,
              m.snapshot_version);
  std::printf("  campaign       %d (%04d-%02d-%02d, %d days)\n", m.year,
              m.start.year, m.start.month, m.start.day, m.num_days);
  std::printf("  devices        %" PRIu64 "\n", m.n_devices);
  std::printf("  aps            %" PRIu64 "\n", m.n_aps);
  std::printf("  samples        %" PRIu64 "\n", m.n_samples);
  std::printf("  app traffic    %" PRIu64 "\n", m.n_app_traffic);
  std::printf("  scenario hash  %016" PRIx64 "\n", m.scenario_hash);
  std::printf("  universe       %s (%" PRIu64 " bytes, %016" PRIx64 ")\n",
              m.universe_file.c_str(), m.universe_bytes,
              m.universe_checksum);
  std::printf("  shards         %zu\n", m.shards.size());
  std::printf("                 idx devices      count      samples"
              "        bytes       checksum\n");
  for (const io::ShardEntry& s : m.shards) {
    std::printf("                 %3u %10" PRIu64 " %10" PRIu64 " %12" PRIu64
                " %12" PRIu64 " %016" PRIx64 "  %s\n",
                s.index, s.device_begin, s.device_count, s.n_samples,
                s.file_bytes, s.header_checksum, s.file.c_str());
  }
  const io::SnapshotResult v = verify_shard_store(args.in_dir, m);
  if (!v.ok()) {
    std::fprintf(stderr, "shard store verify FAILED: %s\n", v.error.c_str());
    return kExitVerify;
  }
  std::printf("verify OK: universe + %zu shard files match the manifest\n",
              m.shards.size());
  return kExitOk;
}

int cmd_snapshot_info(const Args& args) {
  if (args.in_dir.empty()) return usage();
  std::error_code ec;
  if (std::filesystem::is_directory(args.in_dir, ec)) {
    return cmd_shard_info(args);
  }
  io::SnapshotInfo info;
  const io::SnapshotResult r = io::read_snapshot_info(args.in_dir, info);
  if (!r.ok()) {
    std::fprintf(stderr, "snapshot info failed: %s\n", r.error.c_str());
    return snapshot_failure_code(args.in_dir);
  }
  std::printf("snapshot %s\n", args.in_dir.c_str());
  std::printf("  version        %u\n", info.version);
  std::printf("  campaign       %d (%04d-%02d-%02d, %d days)\n", info.year,
              info.start.year, info.start.month, info.start.day,
              info.num_days);
  std::printf("  devices        %" PRIu64 "\n", info.n_devices);
  std::printf("  aps            %" PRIu64 "\n", info.n_aps);
  std::printf("  samples        %" PRIu64 "\n", info.n_samples);
  std::printf("  app traffic    %" PRIu64 "\n", info.n_app_traffic);
  std::printf("  scenario hash  %016" PRIx64 "\n", info.scenario_hash);
  std::printf("  file bytes     %" PRIu64 "\n", info.file_bytes);
  std::printf("  sections       id       offset        bytes       checksum\n");
  for (const io::SnapshotSection& s : info.sections) {
    std::printf("                 %2u %12" PRIu64 " %12" PRIu64
                " %016" PRIx64 "\n",
                s.id, s.offset, s.bytes, s.checksum);
  }
  return kExitOk;
}

int cmd_snapshot_warm(const Args& args) {
  if (io::cache_dir().empty()) {
    std::fprintf(stderr,
                 "snapshot warm needs TOKYONET_CACHE_DIR to be set\n");
    return kExitUsage;
  }
  int rc = kExitOk;
  for (Year y : kAllYears) {
    ScenarioConfig config = scenario_config(y, args.scale);
    if (args.seed) config.seed = *args.seed;
    sim::CampaignCacheStatus status;
    const Dataset ds = sim::cached_campaign(config, &status);
    if (status.enabled) {
      std::printf("tokyonet-cache: %s %s\n", status.hit ? "hit" : "miss",
                  status.path.string().c_str());
      if (!status.detail.empty()) {
        std::fprintf(stderr, "tokyonet-cache: note: %s\n",
                     status.detail.c_str());
        rc = kExitLoad;  // save failed: cache still cold
      }
    }
    std::printf("%s: %zu devices, %zu samples\n",
                std::string(to_string(y)).c_str(), ds.devices.size(),
                ds.samples.size());
  }
  return rc;
}

int cmd_snapshot(const Args& args) {
  if (args.subcommand == "save") return cmd_snapshot_save(args);
  if (args.subcommand == "shard") return cmd_snapshot_shard(args);
  if (args.subcommand == "load") return cmd_snapshot_load(args);
  if (args.subcommand == "info") return cmd_snapshot_info(args);
  if (args.subcommand == "warm") return cmd_snapshot_warm(args);
  return usage();
}

// ---------------------------------------------------------------------
// ingest.

ingest::IngestConfig ingest_config(const Args& args) {
  ingest::IngestConfig config;
  config.shards = args.shards < 1 ? 1 : args.shards;
  config.queue_capacity =
      args.queue < 1 ? 1 : static_cast<std::size_t>(args.queue);
  config.shed_on_overflow = args.shed;
  return config;
}

ingest::ReplayOptions replay_options(const Args& args) {
  ingest::ReplayOptions opts;
  opts.batch_records = args.batch < 1 ? 1 : static_cast<std::size_t>(args.batch);
  opts.rate_records_per_sec = args.rate;
  opts.device_multiplier =
      args.multiplier < 1 ? 1 : static_cast<std::uint32_t>(args.multiplier);
  return opts;
}

void print_ingest_summary(const ingest::IngestServer& server) {
  const ingest::IngestCounters c = server.counters();
  std::printf("sessions: %" PRIu64 " opened, %" PRIu64 " closed, %" PRIu64
              " failed\n",
              c.sessions_opened, c.sessions_closed, c.sessions_failed);
  std::printf("frames:   %" PRIu64 " accepted, %" PRIu64 " rejected, %" PRIu64
              " bytes\n",
              c.frames_accepted, c.frames_rejected, c.bytes_received);
  std::printf("commits:  %" PRIu64 " batches / %" PRIu64 " records / %" PRIu64
              " app records; shed %" PRIu64 " batches / %" PRIu64
              " records\n",
              c.batches_committed, c.records_committed,
              c.app_records_committed, c.batches_shed, c.records_shed);

  const analysis::StreamResult r = server.result();
  if (r.totals.n_samples > 0) {
    const double gb = 1024.0 * 1024.0 * 1024.0;
    std::printf("stream:   %" PRIu64 " samples; cellular %.2f GB down, "
                "WiFi %.2f GB down; WiFi-traffic ratio %.2f\n",
                r.totals.n_samples,
                static_cast<double>(r.totals.cell_rx) / gb,
                static_cast<double>(r.totals.wifi_rx) / gb,
                r.wifi_traffic.mean_ratio());
  }
}

int cmd_ingest_serve(const Args& args) {
  if (args.port <= 0) return usage();
  ingest::IngestServer server(ingest_config(args));
  ingest::TcpIngestListener listener(server);
  std::string error;
  if (!listener.start(args.host, static_cast<std::uint16_t>(args.port),
                      &error)) {
    std::fprintf(stderr, "ingest serve: %s\n", error.c_str());
    return kExitFailure;
  }
  const int want = args.sessions < 1 ? 1 : args.sessions;
  std::printf("listening on %s:%u (%d shards, queue %d, %s); waiting for "
              "%d session%s\n",
              args.host.c_str(), listener.port(), server.config().shards,
              static_cast<int>(server.config().queue_capacity),
              server.config().shed_on_overflow ? "shed" : "block", want,
              want == 1 ? "" : "s");
  std::fflush(stdout);
  for (;;) {
    const ingest::IngestCounters c = server.counters();
    if (c.sessions_closed + c.sessions_failed >=
        static_cast<std::uint64_t>(want)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  listener.stop();
  server.shutdown();
  print_ingest_summary(server);
  const ingest::IngestCounters c = server.counters();
  return c.sessions_failed > 0 ? kExitFailure : kExitOk;
}

int cmd_ingest_replay(const Args& args) {
  if (!args.year || args.port <= 0) return usage();
  const auto year = to_year(*args.year);
  if (!year) {
    std::fprintf(stderr, "year must be 2013..2015\n");
    return kExitUsage;
  }
  const Dataset ds = make_dataset(args, *year);

  ingest::TcpClientSink sink;
  std::string error;
  if (!sink.connect(args.host, static_cast<std::uint16_t>(args.port),
                    &error)) {
    std::fprintf(stderr, "ingest replay: %s\n", error.c_str());
    return kExitFailure;
  }
  ingest::ReplayStats stats;
  const bool ok = ingest::replay_dataset(ds, replay_options(args), sink,
                                         &stats);
  sink.close();
  std::printf("streamed %" PRIu64 " records / %" PRIu64 " frames / %" PRIu64
              " bytes in %.2fs (%.0f records/s)%s\n",
              stats.records, stats.frames, stats.bytes, stats.wall_seconds,
              stats.wall_seconds > 0
                  ? static_cast<double>(stats.records) / stats.wall_seconds
                  : 0.0,
              ok ? "" : " [aborted: server rejected the stream]");
  return ok ? kExitOk : kExitFailure;
}

int cmd_ingest_stats(const Args& args) {
  if (!args.year) return usage();
  const auto year = to_year(*args.year);
  if (!year) {
    std::fprintf(stderr, "year must be 2013..2015\n");
    return kExitUsage;
  }
  const Dataset ds = make_dataset(args, *year);

  ingest::IngestServer server(ingest_config(args));
  auto session = server.connect();
  ingest::SessionSink sink(*session);
  ingest::ReplayStats stats;
  const bool sent = ingest::replay_dataset(ds, replay_options(args), sink,
                                           &stats);
  const bool clean = sent && session->finish();
  if (!clean) {
    std::fprintf(stderr, "ingest stats: session failed: %s\n",
                 session->error().c_str());
  }
  server.shutdown();

  std::printf("replayed %" PRIu64 " records / %" PRIu64 " frames / %" PRIu64
              " bytes in %.2fs (%.0f records/s)\n",
              stats.records, stats.frames, stats.bytes, stats.wall_seconds,
              stats.wall_seconds > 0
                  ? static_cast<double>(stats.records) / stats.wall_seconds
                  : 0.0);
  print_ingest_summary(server);

  int rc = clean ? kExitOk : kExitFailure;
  const bool verify = !args.no_verify && args.multiplier <= 1 && !args.shed;
  if (verify && clean) {
    const std::string diff = analysis::compare_stream_results(
        server.result(), analysis::batch_stream_result(ds));
    if (diff.empty()) {
      std::printf("verify:   incremental == batch (byte-identical)\n");
    } else {
      std::fprintf(stderr, "verify: MISMATCH: %s\n", diff.c_str());
      rc = kExitVerify;
    }
  }
  return rc;
}

int cmd_ingest(const Args& args) {
  if (args.subcommand == "serve") return cmd_ingest_serve(args);
  if (args.subcommand == "replay") return cmd_ingest_replay(args);
  if (args.subcommand == "stats") return cmd_ingest_stats(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage();
  try {
    if (args.command == "fig") return cmd_fig(args);
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "report") return cmd_report(args);
    if (args.command == "years") return cmd_years(args);
    if (args.command == "snapshot") return cmd_snapshot(args);
    if (args.command == "ingest") return cmd_ingest(args);
  } catch (const analysis::query::SourceError& e) {
    // An out-of-core scan lost its store mid-figure (truncated shard,
    // checksum flip, deleted file): load/verify semantics, not a crash.
    std::fprintf(stderr, "tokyonet: %s\n", e.what());
    return args.shard_dir.empty() ? kExitLoad
                                  : snapshot_failure_code(args.shard_dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tokyonet: %s\n", e.what());
    return kExitFailure;
  }
  return usage();
}
