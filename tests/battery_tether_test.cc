// Tests for the battery model (§2's battery status) and tethering
// (§2's data cleaning).
#include <gtest/gtest.h>

#include "analysis/battery.h"
#include "analysis/volumes.h"
#include "testutil.h"

namespace tokyonet::analysis {
namespace {

using test::campaign;

TEST(Battery, LevelsInRange) {
  const Dataset& ds = campaign(Year::Y2015);
  for (const Sample& s : ds.samples) {
    ASSERT_GE(s.battery_pct, 1);
    ASSERT_LE(s.battery_pct, 100);
  }
}

TEST(Battery, ChargesOvernightDrainsByEvening) {
  const Dataset& ds = campaign(Year::Y2015);
  const BatteryAnalysis b = battery_analysis(ds);
  const auto profile = b.mean_level.ratio_series();
  // Mean level at 07:00 (post-charge) clearly exceeds 21:00 (post-day).
  const int monday = 2 * 24;
  EXPECT_GT(profile[monday + 7], profile[monday + 21] + 10);
  EXPECT_GT(profile[monday + 7], 80);
}

TEST(Battery, SummaryStatsSane) {
  const BatteryAnalysis b = battery_analysis(campaign(Year::Y2015));
  EXPECT_GT(b.mean, 40);
  EXPECT_LT(b.mean, 95);
  EXPECT_GE(b.low_share, 0.0);
  EXPECT_LT(b.low_share, 0.30);
  EXPECT_GT(b.mean_wifi_off, 0);
  EXPECT_GT(b.mean_wifi_on, 0);
}

TEST(Battery, IntraDayMonotoneWhileAwayFromPower) {
  // For a worker's office hours (no charging opportunity unless low),
  // battery never increases except from the low-battery top-up.
  const Dataset& ds = campaign(Year::Y2015);
  int violations = 0, checked = 0;
  for (const DeviceInfo& dev : ds.devices) {
    const auto samples = ds.device_samples(dev.id);
    for (std::size_t i = 1; i < samples.size(); ++i) {
      const Sample& prev = samples[i - 1];
      const Sample& cur = samples[i];
      if (cur.bin != prev.bin + 1) continue;
      const int hour = ds.calendar.hour_of(cur.bin);
      if (hour < 10 || hour >= 17) continue;
      ++checked;
      if (cur.battery_pct > prev.battery_pct + 1 && prev.battery_pct > 25) {
        ++violations;
      }
    }
  }
  ASSERT_GT(checked, 1000);
  EXPECT_EQ(violations, 0);
}

TEST(Tethering, AndroidOnlyAndMatchesTruth) {
  const Dataset& ds = campaign(Year::Y2015);
  for (const Sample& s : ds.samples) {
    if (!s.tethering) continue;
    EXPECT_EQ(ds.devices[value(s.device)].os, Os::Android);
    EXPECT_TRUE(ds.truth.devices[value(s.device)].is_tetherer);
    // Hotspot mode keeps the client WiFi radio off.
    EXPECT_EQ(s.wifi_state, WifiState::Off);
    EXPECT_EQ(s.wifi_rx, 0u);
  }
}

TEST(Tethering, SomeTetherTrafficExists) {
  const Dataset& ds = campaign(Year::Y2015);
  double tether_mb = 0;
  std::size_t tether_bins = 0;
  for (const Sample& s : ds.samples) {
    if (s.tethering) {
      tether_mb += s.cell_rx / 1e6;
      ++tether_bins;
    }
  }
  EXPECT_GT(tether_bins, 5u);
  // Laptop-grade volumes: tens of MB per 10-minute bin on average.
  EXPECT_GT(tether_mb / static_cast<double>(tether_bins), 20.0);
}

TEST(Tethering, ExclusionMirrorsPaperCleaning) {
  const Dataset& ds = campaign(Year::Y2015);
  UserDayOptions keep;
  keep.exclude_tethering = false;
  const auto with = user_days(ds, keep);
  const auto without = user_days(ds);  // default: excluded
  ASSERT_EQ(with.size(), without.size());
  double with_cell = 0, without_cell = 0;
  for (const UserDay& d : with) with_cell += d.cell_rx_mb;
  for (const UserDay& d : without) without_cell += d.cell_rx_mb;
  EXPECT_GT(with_cell, without_cell);  // tether volume stripped
}

TEST(Tethering, NonTetherersUnaffectedByExclusion) {
  const Dataset& ds = campaign(Year::Y2015);
  UserDayOptions keep;
  keep.exclude_tethering = false;
  const auto with = user_days(ds, keep);
  const auto without = user_days(ds);
  for (std::size_t i = 0; i < with.size(); ++i) {
    if (ds.truth.devices[value(with[i].device)].is_tetherer) continue;
    ASSERT_DOUBLE_EQ(with[i].cell_rx_mb, without[i].cell_rx_mb);
  }
}

}  // namespace
}  // namespace tokyonet::analysis
