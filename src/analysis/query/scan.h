// Shared chunking geometry for deterministic parallel column scans.
//
// Every analysis kernel that scans the DatasetIndex SoA projections in
// parallel partitions its input the same way: fixed 64K-sample chunks
// for flat column scans, fixed 16-device blocks for scans that need
// per-device fields or ranges. The partition depends only on the input
// size — never on the thread count — and each partial is either an
// exact integer accumulation (u64, or integer-valued doubles below
// 2^53), a max-merge, or a per-device product, all of which reduce
// grouping-independently. Merging the partials in index order therefore
// reproduces the serial reference byte-identically at any thread count
// (DESIGN.md §5c); this header is the one place that geometry and its
// contract live, instead of one copy per kernel.
#pragma once

#include <algorithm>
#include <cstddef>

#include "core/parallel.h"

namespace tokyonet::analysis::query {

/// Samples per parallel_map item for flat column scans.
inline constexpr std::size_t kScanChunk = std::size_t{1} << 16;

/// Devices per parallel_map item for per-device scans.
inline constexpr std::size_t kDeviceBlock = 16;

[[nodiscard]] constexpr std::size_t num_chunks(std::size_t n_samples) noexcept {
  return (n_samples + kScanChunk - 1) / kScanChunk;
}

[[nodiscard]] constexpr std::size_t num_device_blocks(
    std::size_t n_devices) noexcept {
  return (n_devices + kDeviceBlock - 1) / kDeviceBlock;
}

/// Runs fn(begin, end) over the fixed 64K-sample chunks of [0, n) and
/// returns the partials in chunk order.
template <typename Fn>
[[nodiscard]] auto map_chunks(std::size_t n, Fn&& fn) {
  return core::parallel_map(num_chunks(n), [&](std::size_t c) {
    const std::size_t begin = c * kScanChunk;
    return fn(begin, std::min(begin + kScanChunk, n));
  });
}

/// Runs fn(d0, d1) over the fixed 16-device blocks of [0, n_devices)
/// and returns the partials in block order.
template <typename Fn>
[[nodiscard]] auto map_device_blocks(std::size_t n_devices, Fn&& fn) {
  return core::parallel_map(num_device_blocks(n_devices), [&](std::size_t b) {
    const std::size_t d0 = b * kDeviceBlock;
    return fn(d0, std::min(d0 + kDeviceBlock, n_devices));
  });
}

}  // namespace tokyonet::analysis::query
