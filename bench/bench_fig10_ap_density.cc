// Fig 10: number of associated unique APs per 5 km cell — home and
// public, 2013 vs 2015 — plus the coverage-growth statistics.
#include "analysis/quality.h"
#include "common.h"
#include "geo/region.h"

namespace {

using namespace tokyonet;

void print_map(std::string_view caption, const analysis::ApDensityMap& m,
               const geo::Grid& grid) {
  std::printf("\n%.*s  (cells>=1: %d, cells>=100: %d, max: %d)\n",
              static_cast<int>(caption.size()), caption.data(),
              m.cells_with_ap, m.cells_with_100, m.max_count);
  for (int y = grid.height() - 1; y >= 0; y -= 2) {
    for (int x = 0; x < grid.width(); x += 2) {
      int n = 0;
      for (int dy = 0; dy < 2 && y - dy >= 0; ++dy) {
        for (int dx = 0; dx < 2 && x + dx < grid.width(); ++dx) {
          n += m.count_by_cell[static_cast<std::size_t>(
              (y - dy) * grid.width() + x + dx)];
        }
      }
      std::fputc(n == 0 ? '.' : n < 5 ? ':' : n < 20 ? 'o' : n < 80 ? 'O' : '@',
                 stdout);
    }
    std::fputc('\n', stdout);
  }
}

void print_reproduction() {
  bench::print_header("bench_fig10_ap_density",
                      "Fig 10 (associated APs per 5 km cell)");
  const geo::TokyoRegion region;
  const int cells = region.grid().num_cells();
  for (Year y : {Year::Y2013, Year::Y2015}) {
    const auto home = analysis::ap_density_map(
        bench::campaign(y), bench::classification(y), ApClass::Home, cells);
    const auto pub = analysis::ap_density_map(
        bench::campaign(y), bench::classification(y), ApClass::Public, cells);
    print_map(std::string("home ") + std::string(to_string(y)), home,
              region.grid());
    print_map(std::string("public ") + std::string(to_string(y)), pub,
              region.grid());
  }
  std::printf("\npaper: public cells with >=1 AP grow 229 -> 265; "
              "cells with >100 APs grow 10 -> 23\n");
}

void BM_DensityMap(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  const auto& cls = bench::classification(Year::Y2015);
  const geo::TokyoRegion region;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::ap_density_map(
        ds, cls, ApClass::Public, region.grid().num_cells()));
  }
}
BENCHMARK(BM_DensityMap)->Unit(benchmark::kMillisecond);

}  // namespace

TOKYONET_BENCH_MAIN()
