// Record schema for one measurement campaign.
//
// The paper's on-device software (§2) uploads, every 10 minutes: byte
// counts per network interface, per-application traffic (Android only),
// the associated WiFi AP (BSSID/ESSID) with signal strength, scan results
// for non-associated APs (Android only), cellular technology, and coarse
// (5 km) geolocation. `Sample` mirrors exactly that record; `Dataset`
// holds a whole campaign.
//
// Everything the analysis layer may read is "observable": it is
// information the real measurement software could report. Simulator
// ground truth (true AP placement, user archetypes, true capped days,
// ...) lives in `GroundTruth`, which only tests, calibration checks and
// the survey synthesizer consume.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/clock.h"
#include "core/column.h"
#include "core/types.h"

namespace tokyonet::core {
class DatasetIndex;
}  // namespace tokyonet::core

namespace tokyonet {

/// Index of a 5 km grid cell (see geo::Grid). 0xFFFF = unknown location.
using GeoCell = std::uint16_t;
inline constexpr GeoCell kNoGeoCell = 0xFFFF;

/// Traffic attributed to one application category within one sample
/// (Android only; iOS reports a single `Unknown` aggregate, §2).
struct AppTraffic {
  AppCategory category = AppCategory::Unknown;
  /// Explicit padding, always zero: these records are serialized raw
  /// (io/snapshot.cc), so compiler-inserted padding would leak
  /// indeterminate bytes into snapshot files and break byte-level
  /// write determinism.
  std::uint8_t reserved[3] = {};
  std::uint32_t rx_bytes = 0;
  std::uint32_t tx_bytes = 0;
};

/// Static, observable description of a device in the campaign.
struct DeviceInfo {
  DeviceId id{};
  Os os = Os::Android;
  Carrier carrier = Carrier::CarrierA;
  /// True for recruited participants (who also answer the survey);
  /// false for organic app-store installs (§2).
  bool recruited = true;
  /// Explicit padding, always zero (serialized raw — see AppTraffic).
  std::uint8_t reserved = 0;
};

/// Observable identity of a WiFi access point, as seen by a device that
/// associates with it: BSSID (AP MAC), ESSID (network name), band and
/// channel. The AP's true location/placement is ground truth only.
struct ApInfo {
  std::uint64_t bssid = 0;  // 48-bit MAC in the low bits
  std::string essid;
  Band band = Band::B24GHz;
  std::uint8_t channel = 1;  // 1..13 (2.4 GHz) or 36+ (5 GHz)
};

/// One 10-minute measurement record from one device.
struct Sample {
  DeviceId device{};
  TimeBin bin = 0;
  GeoCell geo_cell = kNoGeoCell;

  // Byte counters per interface over the 10-minute window.
  std::uint32_t cell_rx = 0;
  std::uint32_t cell_tx = 0;
  std::uint32_t wifi_rx = 0;
  std::uint32_t wifi_tx = 0;

  /// Associated AP (kNoAp when not associated).
  ApId ap = kNoAp;
  /// Offset/count into Dataset::app_traffic for this sample's
  /// per-application breakdown (count 0 for idle bins and iOS devices
  /// with no traffic).
  std::uint32_t app_begin = 0;
  std::uint8_t app_count = 0;

  CellTech tech = CellTech::None;
  WifiState wifi_state = WifiState::Off;
  /// RSSI of the association in dBm (meaningless unless Associated).
  std::int8_t rssi_dbm = -127;

  /// Battery level reported with each record (§2), 1..100.
  std::uint8_t battery_pct = 100;
  /// True while the device acts as a cellular hotspot (Android reports
  /// tethering state; the paper strips tethering traffic from the main
  /// analysis, §2).
  bool tethering = false;

  // Scan summary (Android only, §2): number of *public* WiFi networks
  // detected in this window, split by band and by whether the strongest
  // beacon was "strong" (>= -70 dBm, §3.5). Saturates at 255.
  std::uint8_t scan_pub24_all = 0;
  std::uint8_t scan_pub24_strong = 0;
  std::uint8_t scan_pub5_all = 0;
  std::uint8_t scan_pub5_strong = 0;

  /// Explicit (zeroed) tail padding. Without it the struct has two
  /// unnamed padding bytes that assignment need not copy, so records
  /// that travel through the byte-exact snapshot/ingest encodings would
  /// compare unequal to their in-memory originals.
  std::uint8_t reserved_[2] = {0, 0};

  [[nodiscard]] std::uint64_t total_rx() const noexcept {
    return std::uint64_t{cell_rx} + wifi_rx;
  }
  [[nodiscard]] std::uint64_t total_tx() const noexcept {
    return std::uint64_t{cell_tx} + wifi_tx;
  }
};

/// Post-campaign survey answers from one recruited user (§4.2).
struct SurveyResponse {
  Occupation occupation = Occupation::Other;
  /// "Did you connect to WiFi APs at <location>?" (Table 8).
  SurveyYesNo connected[kNumSurveyLocations] = {
      SurveyYesNo::No, SurveyYesNo::No, SurveyYesNo::No};
  /// Bitmask of SurveyReason per location; multiple answers allowed
  /// (Table 9).
  std::uint16_t reasons[kNumSurveyLocations] = {0, 0, 0};

  [[nodiscard]] bool gave_reason(SurveyLocation loc,
                                 SurveyReason r) const noexcept {
    return (reasons[static_cast<int>(loc)] >>
            static_cast<int>(r)) & 1u;
  }
  void set_reason(SurveyLocation loc, SurveyReason r) noexcept {
    reasons[static_cast<int>(loc)] |=
        static_cast<std::uint16_t>(1u << static_cast<int>(r));
  }
};

/// Broad behavioural archetype of a simulated user (§3.3.1 Fig 5).
enum class UserArchetype : std::uint8_t {
  CellularIntensive = 0,  // never uses WiFi (no AP / no configuration)
  WifiIntensive = 1,      // avoids cellular data almost entirely
  Mixed = 2,              // uses both, offloading opportunistically
};

/// Ground truth about one device, known to the simulator but *not*
/// observable by the analysis layer.
struct DeviceTruth {
  UserArchetype archetype = UserArchetype::Mixed;
  Occupation occupation = Occupation::Other;
  bool has_home_ap = false;
  ApId home_ap = kNoAp;
  bool works_at_office = false;
  bool office_has_byod_wifi = false;  // office AP accessible to the user
  ApId office_ap = kNoAp;
  GeoCell home_cell = kNoGeoCell;
  GeoCell office_cell = kNoGeoCell;
  /// Per-day fraction of waking bins with WiFi explicitly off.
  float wifi_off_propensity = 0.f;
  /// Lognormal daily traffic demand parameters (per-user heterogeneity).
  float demand_mu = 0.f;     // log(MB)
  float demand_sigma = 1.f;  // log-scale
  /// Whether this user configured public WiFi (e.g. SIM-auth carrier APs).
  bool uses_public_wifi = false;
  /// iOS only: bin at which the device took the OS update, or -1.
  std::int32_t update_bin = -1;
  /// Days on which the cellular soft cap throttled this device.
  std::vector<std::uint8_t> capped_day;  // size = num_days, 0/1
  /// Occasionally shares the cellular link with a laptop (tethering).
  bool is_tetherer = false;
};

/// Ground truth about one AP.
struct ApTruth {
  ApPlacement placement = ApPlacement::Public;
  /// Explicit padding, always zero (serialized raw — see AppTraffic).
  std::uint8_t reserved = 0;
  GeoCell cell = kNoGeoCell;
};

/// All simulator ground truth for a campaign.
struct GroundTruth {
  std::vector<DeviceTruth> devices;  // parallel to Dataset::devices
  std::vector<ApTruth> aps;          // parallel to Dataset::aps
};

/// A full campaign: devices, the AP universe they encountered, and the
/// 10-minute sample stream, sorted by (device, bin).
///
/// The two big arrays (`samples`, `app_traffic`) are Columns: owned by
/// default, but a snapshot load (io/snapshot.h) can hand them out as
/// zero-copy views over an mmapped file.
class Dataset {
 public:
  Year year = Year::Y2015;
  CampaignCalendar calendar;

  std::vector<DeviceInfo> devices;
  std::vector<ApInfo> aps;
  core::Column<Sample> samples;
  core::Column<AppTraffic> app_traffic;
  std::vector<SurveyResponse> survey;  // parallel to devices (recruited only meaningful)
  GroundTruth truth;

  [[nodiscard]] std::size_t num_devices() const noexcept {
    return devices.size();
  }
  [[nodiscard]] int num_days() const noexcept { return calendar.num_days(); }

  /// (Re)build the shared acceleration index (core/dataset_index.h):
  /// per-device sample / app-traffic / per-day ranges plus SoA column
  /// projections of the hot sample fields. Requires `samples` sorted by
  /// (device, bin); returns false — leaving the dataset unindexed —
  /// when the stream violates that contract (unordered samples,
  /// out-of-range device or bin). Called by the simulator and by
  /// deserialization.
  bool build_index();

  /// Installs an index built externally — e.g. by the simulator's
  /// DatasetIndex::DenseBuilder, which projects the SoA columns while
  /// the campaign is generated instead of re-scanning the AoS array.
  /// The caller guarantees the index describes exactly the current
  /// `samples` array.
  void adopt_index(std::shared_ptr<const core::DatasetIndex> idx);

  /// Release-mode structural validation (the promoted form of the debug
  /// asserts in build_index()/device_samples()): checks device/AP/app
  /// references, (device, bin) ordering, bin bounds against the
  /// calendar, and ground-truth array shapes. Returns an empty string
  /// when the dataset is sound, else a description of the first
  /// problem. Snapshot loads call this before trusting a file; the
  /// sample scan runs on the core/parallel pool.
  [[nodiscard]] std::string validate() const;

  /// The non-sample half of validate(): device-id/survey/ground-truth
  /// shape checks only, O(devices + aps). Loaders that immediately run
  /// build_index() — whose projection pass verifies every per-sample
  /// rule validate() would — pair this with the index build instead of
  /// paying a second full sweep of the sample array (io/shard_store
  /// does).
  [[nodiscard]] std::string validate_frame() const;

  /// True once build_index() has succeeded and matches the current
  /// sample count.
  [[nodiscard]] bool indexed() const noexcept;

  /// The shared acceleration index, or nullptr when build_index() has
  /// not run (or no longer matches the sample count).
  [[nodiscard]] const core::DatasetIndex* index() const noexcept;

  /// All samples of one device, in time order.
  [[nodiscard]] std::span<const Sample> device_samples(DeviceId id) const;

  /// Per-application records of one sample.
  [[nodiscard]] std::span<const AppTraffic> apps_of(const Sample& s) const {
    return {app_traffic.data() + s.app_begin, s.app_count};
  }

 private:
  std::shared_ptr<const core::DatasetIndex> index_;
};

}  // namespace tokyonet
