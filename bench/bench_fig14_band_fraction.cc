// Fig 14: fraction of associated unique 5 GHz APs at home / office /
// public, per year.
#include "analysis/wifiusage.h"
#include "common.h"

namespace {

using namespace tokyonet;

void BM_BandFractions(benchmark::State& state) {
  const Dataset& ds = bench::campaign(Year::Y2015);
  const auto& cls = bench::classification(Year::Y2015);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::band_fractions(ds, cls));
  }
}
BENCHMARK(BM_BandFractions)->Unit(benchmark::kMicrosecond);

}  // namespace

TOKYONET_BENCH_FIGURE("fig14")
