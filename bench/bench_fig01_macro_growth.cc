// Fig 1: growth of Japanese residential broadband vs cellular download
// volume, 2006-2015 (modelled; see DESIGN.md substitution table).
#include "analysis/macro.h"
#include "common.h"

namespace {

using namespace tokyonet;

void BM_MacroSeries(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::macro_growth_series(12));
  }
}
BENCHMARK(BM_MacroSeries);

}  // namespace

TOKYONET_BENCH_FIGURE("fig01")
