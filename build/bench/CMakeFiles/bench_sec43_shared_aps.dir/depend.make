# Empty dependencies file for bench_sec43_shared_aps.
# This may be replaced when dependencies are built.
