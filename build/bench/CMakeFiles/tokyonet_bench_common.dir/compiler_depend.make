# Empty compiler generated dependencies file for tokyonet_bench_common.
# This may be replaced when dependencies are built.
