file(REMOVE_RECURSE
  "libtokyonet_bench_common.a"
)
