#include "analysis/classify.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "core/parallel.h"
#include "net/essid.h"

namespace tokyonet::analysis {
namespace {

/// Number of 10-minute bins in the nightly window.
[[nodiscard]] int night_window_bins(const ClassifyOptions& opt) noexcept {
  int hours = opt.night_to_hour - opt.night_from_hour;
  if (hours <= 0) hours += 24;
  return hours * kBinsPerHour;
}

/// Association statistics one device contributes to the per-AP
/// aggregates, plus its nightly home-AP verdict. A device touches only
/// a handful of APs, so this stays compact and the per-AP arrays are
/// only materialized once, during the ordered merge.
struct DeviceApStats {
  struct PerAp {
    std::uint32_t ap = 0;
    int assoc_bins = 0;
    int office_window_bins = 0;
    std::set<GeoCell> cells_seen;
  };
  std::vector<PerAp> aps;  // in order of first association
  std::uint32_t home_ap = value(kNoAp);
};

/// Scans one device's samples. Pure function of that device's stream,
/// so devices can run concurrently; all counts merge by addition and
/// set union, which are grouping-independent.
[[nodiscard]] DeviceApStats scan_device(const Dataset& ds,
                                        const ClassifyOptions& opt,
                                        const DeviceInfo& dev,
                                        int min_bins) {
  DeviceApStats stats;
  std::unordered_map<std::uint32_t, std::size_t> ap_index;
  std::unordered_map<std::uint32_t, int> night_counts;  // per device-day
  std::unordered_map<std::uint32_t, int> home_votes;

  // Nightly windows: a window belongs to the day it starts in (22:00 of
  // day d through 06:00 of day d+1).
  int window_day = -1;
  auto flush_window = [&]() {
    if (window_day < 0) return;
    // Most-present AP in this night's window.
    std::uint32_t best_ap = value(kNoAp);
    int best = 0;
    for (const auto& [ap, n] : night_counts) {
      if (n > best) {
        best = n;
        best_ap = ap;
      }
    }
    if (best >= min_bins && best_ap != value(kNoAp)) {
      ++home_votes[best_ap];
    }
    night_counts.clear();
    window_day = -1;
  };

  for (const Sample& s : ds.device_samples(dev.id)) {
    if (s.wifi_state == WifiState::Associated && s.ap != kNoAp) {
      const std::uint32_t ap = value(s.ap);
      auto [it, inserted] = ap_index.try_emplace(ap, stats.aps.size());
      if (inserted) {
        stats.aps.emplace_back();
        stats.aps.back().ap = ap;
      }
      DeviceApStats::PerAp& per_ap = stats.aps[it->second];
      ++per_ap.assoc_bins;
      if (s.geo_cell != kNoGeoCell) per_ap.cells_seen.insert(s.geo_cell);
      const bool weekday = !ds.calendar.is_weekend(s.bin);
      if (weekday && ds.calendar.in_hour_window(s.bin, opt.office_from_hour,
                                                opt.office_to_hour)) {
        ++per_ap.office_window_bins;
      }
    }

    // Maintain the rolling nightly window.
    const int hour = ds.calendar.hour_of(s.bin);
    const bool in_night = ds.calendar.in_hour_window(
        s.bin, opt.night_from_hour, opt.night_to_hour);
    if (in_night) {
      const int day = ds.calendar.day_of(s.bin);
      const int wd = hour >= opt.night_from_hour ? day : day - 1;
      if (wd != window_day) {
        flush_window();
        window_day = wd;
      }
      if (s.wifi_state == WifiState::Associated && s.ap != kNoAp) {
        ++night_counts[value(s.ap)];
      }
    } else if (window_day >= 0) {
      flush_window();
    }
  }
  flush_window();

  // The device's home AP is its most frequent nightly candidate.
  int best = 0;
  for (const auto& [ap, votes] : home_votes) {
    if (votes > best) {
      best = votes;
      stats.home_ap = ap;
    }
  }
  return stats;
}

}  // namespace

ApClassification::Counts ApClassification::counts() const {
  Counts c;
  for (std::size_t i = 0; i < ap_class.size(); ++i) {
    if (!associated[i]) continue;
    ++c.total;
    switch (ap_class[i]) {
      case ApClass::Home: ++c.home; break;
      case ApClass::Public: ++c.publik; break;
      case ApClass::Other:
        ++c.other;
        if (is_office[i]) ++c.office;
        break;
    }
  }
  return c;
}

double ApClassification::home_ap_device_share() const {
  if (home_ap_of_device.empty()) return 0;
  std::size_t with = 0;
  for (ApId id : home_ap_of_device) with += id != kNoAp;
  return static_cast<double>(with) /
         static_cast<double>(home_ap_of_device.size());
}

struct ApClassificationBuilder::Impl {
  ClassifyOptions opt;
  int min_bins = 0;
  ApClassification out;
  std::vector<int> assoc_bins;
  std::vector<int> office_window_bins_count;
  std::vector<std::set<GeoCell>> cells_seen;
};

ApClassificationBuilder::ApClassificationBuilder(std::size_t n_devices,
                                                 std::size_t n_aps,
                                                 const ClassifyOptions& opt)
    : impl_(std::make_unique<Impl>()) {
  impl_->opt = opt;
  impl_->min_bins =
      static_cast<int>(opt.home_presence_threshold * night_window_bins(opt));
  impl_->out.ap_class.assign(n_aps, ApClass::Other);
  impl_->out.associated.assign(n_aps, false);
  impl_->out.is_office.assign(n_aps, false);
  impl_->out.is_mobile.assign(n_aps, false);
  impl_->out.home_ap_of_device.assign(n_devices, kNoAp);
  impl_->assoc_bins.assign(n_aps, 0);
  impl_->office_window_bins_count.assign(n_aps, 0);
  impl_->cells_seen.resize(n_aps);
}

ApClassificationBuilder::~ApClassificationBuilder() = default;

struct ApClassificationBuilder::BlockStats::Impl {
  std::vector<DeviceApStats> per_device;
  std::vector<DeviceInfo> devices;  // the block's (local-id) device table
};

ApClassificationBuilder::BlockStats::BlockStats() = default;
ApClassificationBuilder::BlockStats::BlockStats(BlockStats&&) noexcept =
    default;
ApClassificationBuilder::BlockStats&
ApClassificationBuilder::BlockStats::operator=(BlockStats&&) noexcept =
    default;
ApClassificationBuilder::BlockStats::~BlockStats() = default;

ApClassificationBuilder::BlockStats ApClassificationBuilder::scan_block(
    const Dataset& block) const {
  // Per-device scans run in parallel; each returns the compact per-AP
  // statistics its stream contributes plus its home-AP verdict. Only
  // impl_->opt / impl_->min_bins are read, so concurrent scan_block()
  // calls on different blocks never race.
  BlockStats stats;
  stats.impl_ = std::make_unique<BlockStats::Impl>();
  stats.impl_->per_device =
      core::parallel_map(block.devices.size(), [&](std::size_t i) {
        return scan_device(block, impl_->opt, block.devices[i],
                           impl_->min_bins);
      });
  stats.impl_->devices = block.devices;
  return stats;
}

void ApClassificationBuilder::merge_block(BlockStats block_stats,
                                          std::size_t device_base) {
  // Ordered merge into the per-AP aggregates. Counts merge by addition
  // and cell sets by union, so the merged totals equal the serial
  // one-pass totals exactly.
  const std::vector<DeviceApStats>& per_device =
      block_stats.impl_->per_device;
  const std::vector<DeviceInfo>& block_devices = block_stats.impl_->devices;
  ApClassification& out = impl_->out;
  for (std::size_t i = 0; i < per_device.size(); ++i) {
    const DeviceApStats& stats = per_device[i];
    for (const DeviceApStats::PerAp& per_ap : stats.aps) {
      out.associated[per_ap.ap] = true;
      impl_->assoc_bins[per_ap.ap] += per_ap.assoc_bins;
      impl_->office_window_bins_count[per_ap.ap] += per_ap.office_window_bins;
      impl_->cells_seen[per_ap.ap].insert(per_ap.cells_seen.begin(),
                                          per_ap.cells_seen.end());
    }
    if (stats.home_ap != value(kNoAp)) {
      out.home_ap_of_device[device_base + value(block_devices[i].id)] =
          ApId{stats.home_ap};
      out.ap_class[stats.home_ap] = ApClass::Home;
    }
  }
}

void ApClassificationBuilder::add_device_block(const Dataset& block,
                                               std::size_t device_base) {
  merge_block(scan_block(block), device_base);
}

ApClassification ApClassificationBuilder::finish(
    const std::vector<ApInfo>& aps) {
  // Non-home APs: public by ESSID, rest Other (with office/mobile
  // estimation).
  ApClassification& out = impl_->out;
  const ClassifyOptions& opt = impl_->opt;
  const std::size_t n_aps = out.ap_class.size();
  for (std::size_t i = 0; i < n_aps; ++i) {
    if (!out.associated[i] || out.ap_class[i] == ApClass::Home) continue;
    if (net::is_public_essid(aps[i].essid)) {
      out.ap_class[i] = ApClass::Public;
      continue;
    }
    out.ap_class[i] = ApClass::Other;
    if (static_cast<int>(impl_->cells_seen[i].size()) >=
        opt.mobile_min_cells) {
      out.is_mobile[i] = true;
      continue;
    }
    if (impl_->assoc_bins[i] >= opt.office_min_bins &&
        impl_->office_window_bins_count[i] >=
            opt.office_window_share * impl_->assoc_bins[i]) {
      out.is_office[i] = true;
    }
  }
  return std::move(out);
}

ApClassification classify_aps(const Dataset& ds, const ClassifyOptions& opt) {
  ApClassificationBuilder builder(ds.devices.size(), ds.aps.size(), opt);
  builder.add_device_block(ds, 0);
  return builder.finish(ds.aps);
}

}  // namespace tokyonet::analysis
