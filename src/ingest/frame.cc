#include "ingest/frame.h"

#include <cstring>

#include "core/hash.h"

namespace tokyonet::ingest {
namespace {

constexpr std::uint64_t kFrameHashSeed = 0x746B796F696E6731ull;

[[nodiscard]] std::uint64_t payload_crc(const std::uint8_t* data,
                                        std::size_t n) noexcept {
  return core::hash_bytes(data, n, kFrameHashSeed);
}

void append_bytes(std::vector<std::uint8_t>& out, const void* data,
                  std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + n);
}

void append_frame(FrameType type, std::uint32_t device,
                  std::uint32_t n_samples, std::uint32_t n_app,
                  std::span<const std::uint8_t> payload,
                  std::vector<std::uint8_t>& out) {
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(type);
  h.device = device;
  h.n_samples = n_samples;
  h.n_app = n_app;
  h.payload_bytes = static_cast<std::uint32_t>(payload.size());
  h.payload_crc = payload_crc(payload.data(), payload.size());
  append_bytes(out, &h, sizeof(h));
  append_bytes(out, payload.data(), payload.size());
}

}  // namespace

void encode_begin(const BeginPayload& info, std::vector<std::uint8_t>& out) {
  append_frame(FrameType::Begin, 0, 0, 0,
               {reinterpret_cast<const std::uint8_t*>(&info), sizeof(info)},
               out);
}

void encode_records(DeviceId device, std::span<const Sample> samples,
                    std::span<const AppTraffic> app,
                    std::vector<std::uint8_t>& out) {
  std::vector<std::uint8_t> payload;
  payload.reserve(samples.size_bytes() + app.size_bytes());
  append_bytes(payload, samples.data(), samples.size_bytes());
  append_bytes(payload, app.data(), app.size_bytes());
  append_frame(FrameType::Records, value(device),
               static_cast<std::uint32_t>(samples.size()),
               static_cast<std::uint32_t>(app.size()), payload, out);
}

void encode_end(std::vector<std::uint8_t>& out) {
  append_frame(FrameType::End, 0, 0, 0, {}, out);
}

// --- FrameParser --------------------------------------------------------

void FrameParser::feed(std::span<const std::uint8_t> bytes) {
  if (failed()) return;
  // Compact the consumed prefix before growing, so a long stream never
  // accumulates more than one frame of slack.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > (64u << 10))) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

FrameParser::Status FrameParser::fail(std::string what) {
  error_ = std::move(what);
  buf_.clear();
  pos_ = 0;
  return Status::Error;
}

FrameParser::Status FrameParser::next(Frame& out) {
  if (failed()) return Status::Error;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < sizeof(FrameHeader)) return Status::NeedMore;

  FrameHeader h;
  std::memcpy(&h, buf_.data() + pos_, sizeof(h));
  if (h.magic != kFrameMagic) {
    return fail("bad frame magic (not a tokyonet ingest stream)");
  }
  if (h.version != kIngestVersion) {
    return fail("unsupported ingest frame version " +
                std::to_string(h.version) + " (this build speaks " +
                std::to_string(kIngestVersion) + ")");
  }
  if (h.payload_bytes > kMaxFramePayload) {
    return fail("frame payload of " + std::to_string(h.payload_bytes) +
                " bytes exceeds the " + std::to_string(kMaxFramePayload) +
                "-byte limit");
  }

  // Per-type length arithmetic, before waiting for the payload, so a
  // nonsense header fails immediately rather than after a long read.
  const auto type = static_cast<FrameType>(h.type);
  switch (type) {
    case FrameType::Begin:
      if (h.payload_bytes != sizeof(BeginPayload) || h.n_samples != 0 ||
          h.n_app != 0 || h.device != 0) {
        return fail("malformed Begin frame header");
      }
      break;
    case FrameType::Records: {
      const std::uint64_t want =
          std::uint64_t{h.n_samples} * sizeof(Sample) +
          std::uint64_t{h.n_app} * sizeof(AppTraffic);
      if (want != h.payload_bytes) {
        return fail("Records frame length mismatch: header claims " +
                    std::to_string(h.n_samples) + " samples + " +
                    std::to_string(h.n_app) + " app records but " +
                    std::to_string(h.payload_bytes) + " payload bytes");
      }
      break;
    }
    case FrameType::End:
      if (h.payload_bytes != 0 || h.n_samples != 0 || h.n_app != 0 ||
          h.device != 0) {
        return fail("malformed End frame header");
      }
      break;
    default:
      return fail("unknown frame type " + std::to_string(h.type));
  }

  if (avail < sizeof(FrameHeader) + h.payload_bytes) return Status::NeedMore;
  const std::uint8_t* payload = buf_.data() + pos_ + sizeof(FrameHeader);
  if (payload_crc(payload, h.payload_bytes) != h.payload_crc) {
    return fail("frame CRC mismatch (corrupted payload)");
  }

  out = Frame{};
  out.type = type;
  out.device = DeviceId{h.device};
  if (type == FrameType::Begin) {
    std::memcpy(&out.begin, payload, sizeof(BeginPayload));
    if (out.begin.sample_size != sizeof(Sample) ||
        out.begin.app_size != sizeof(AppTraffic)) {
      return fail("record size mismatch (incompatible producer layout)");
    }
  } else if (type == FrameType::Records) {
    samples_.resize(h.n_samples);
    app_.resize(h.n_app);
    std::memcpy(samples_.data(), payload,
                std::size_t{h.n_samples} * sizeof(Sample));
    std::memcpy(app_.data(),
                payload + std::size_t{h.n_samples} * sizeof(Sample),
                std::size_t{h.n_app} * sizeof(AppTraffic));
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      const Sample& s = samples_[i];
      if (s.device != out.device) {
        return fail("sample " + std::to_string(i) +
                    " belongs to device " + std::to_string(value(s.device)) +
                    " inside a frame for device " +
                    std::to_string(h.device));
      }
      if (s.app_count > 0 &&
          std::uint64_t{s.app_begin} + s.app_count > h.n_app) {
        return fail("sample " + std::to_string(i) +
                    " references app records beyond the frame");
      }
    }
    out.samples = {samples_.data(), samples_.size()};
    out.app = {app_.data(), app_.size()};
  }

  pos_ += sizeof(FrameHeader) + h.payload_bytes;
  return Status::Frame;
}

}  // namespace tokyonet::ingest
