// Tests for the application breakdown (Tables 6/7), the soft-cap
// analysis (Fig 19), the §4.1 offload estimates, the macro model (Fig 1)
// and the survey tabulators (Tables 2/8/9).
#include <gtest/gtest.h>

#include "analysis/apps.h"
#include "analysis/cap.h"
#include "analysis/macro.h"
#include "analysis/offload.h"
#include "analysis/surveytab.h"
#include "testutil.h"

namespace tokyonet::analysis {
namespace {

using test::campaign;
using test::campaign_classification;

const AppBreakdown& breakdown(Year y) {
  static const AppBreakdown* cache[kNumYears] = {};
  const int i = static_cast<int>(y);
  if (cache[i] == nullptr) {
    const Dataset& ds = campaign(y);
    cache[i] = new AppBreakdown(app_breakdown(
        ds, campaign_classification(y), infer_home_cells(ds)));
  }
  return *cache[i];
}

TEST(Apps, SharesNormalizedPerContext) {
  const AppBreakdown& b = breakdown(Year::Y2015);
  for (int ctx = 0; ctx < kNumAppContexts; ++ctx) {
    double rx = 0, tx = 0;
    for (int c = 0; c < kNumAppCategories; ++c) {
      rx += b.rx_share[static_cast<std::size_t>(ctx)][static_cast<std::size_t>(c)];
      tx += b.tx_share[static_cast<std::size_t>(ctx)][static_cast<std::size_t>(c)];
    }
    EXPECT_NEAR(rx, 1.0, 1e-9);
    EXPECT_NEAR(tx, 1.0, 1e-9);
  }
}

TEST(Apps, TopRankingSortedAndCapped) {
  const AppBreakdown& b = breakdown(Year::Y2015);
  const auto top = b.top(AppContext::WifiHome, /*rx=*/true, 5);
  ASSERT_LE(top.size(), 5u);
  ASSERT_GE(top.size(), 3u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].share, top[i].share);
  }
}

TEST(Apps, BrowserLeadsCellularEveryYear) {
  // Table 6: browsing tops both cellular contexts in all years.
  for (Year y : kAllYears) {
    for (AppContext ctx : {AppContext::CellHome, AppContext::CellOther}) {
      const auto top = breakdown(y).top(ctx, true, 1);
      ASSERT_FALSE(top.empty());
      EXPECT_EQ(top[0].category, AppCategory::Browser)
          << to_string(ctx) << " " << to_string(y);
    }
  }
}

TEST(Apps, VideoTakesOverHomeWifiFrom2014) {
  // Table 6: WiFi-home video 4.0% (2013) -> 30.4% (2014) -> 25.4% (2015).
  const double v13 = breakdown(Year::Y2013)
      .rx_share[static_cast<int>(AppContext::WifiHome)]
               [static_cast<int>(AppCategory::Video)];
  const double v14 = breakdown(Year::Y2014)
      .rx_share[static_cast<int>(AppContext::WifiHome)]
               [static_cast<int>(AppCategory::Video)];
  EXPECT_LT(v13, 0.10);
  EXPECT_GT(v14, 0.20);
  const auto top14 = breakdown(Year::Y2014).top(AppContext::WifiHome, true, 1);
  EXPECT_EQ(top14[0].category, AppCategory::Video);
}

TEST(Apps, PublicWifiShiftsFromBrowsingToVideoAndDownloads) {
  // Table 6 WiFi-public: browser 44% (2013); video+download surge later.
  const AppBreakdown& b13 = breakdown(Year::Y2013);
  const AppBreakdown& b15 = breakdown(Year::Y2015);
  const auto pub = static_cast<std::size_t>(AppContext::WifiPublic);
  EXPECT_GT(b13.rx_share[pub][static_cast<int>(AppCategory::Browser)], 0.30);
  const double heavy15 =
      b15.rx_share[pub][static_cast<int>(AppCategory::Video)] +
      b15.rx_share[pub][static_cast<int>(AppCategory::Download)];
  const double heavy13 =
      b13.rx_share[pub][static_cast<int>(AppCategory::Video)] +
      b13.rx_share[pub][static_cast<int>(AppCategory::Download)];
  EXPECT_GT(heavy15, heavy13 + 0.10);
}

TEST(Apps, ProductivityUploadHeavyOnHomeWifi) {
  // Table 7: online-storage sync ranks productivity high in WiFi-home TX.
  const AppBreakdown& b = breakdown(Year::Y2015);
  const double tx = b.tx_share[static_cast<int>(AppContext::WifiHome)]
                              [static_cast<int>(AppCategory::Productivity)];
  const double rx = b.rx_share[static_cast<int>(AppContext::WifiHome)]
                              [static_cast<int>(AppCategory::Productivity)];
  EXPECT_GT(tx, 0.06);
  EXPECT_GT(tx, rx);
}

TEST(Apps, LightUserFilterDropsVideoShare) {
  // §3.6: for light users, video's download contribution shrinks.
  const Dataset& ds = campaign(Year::Y2015);
  const auto days = user_days(ds);
  const UserClassifier classes(days);
  AppBreakdownOptions opt;
  opt.days = &days;
  opt.classes = &classes;
  opt.light_users_only = true;
  const AppBreakdown light = app_breakdown(
      ds, campaign_classification(Year::Y2015), infer_home_cells(ds), opt);
  const auto home = static_cast<std::size_t>(AppContext::WifiHome);
  EXPECT_LT(light.rx_share[home][static_cast<int>(AppCategory::Video)],
            breakdown(Year::Y2015).rx_share[home]
                [static_cast<int>(AppCategory::Video)] + 0.05);
}

TEST(Cap, SharesAndGapBands) {
  const Dataset& ds14 = campaign(Year::Y2014);
  const Dataset& ds15 = campaign(Year::Y2015);
  const CapAnalysis c14 = analyze_cap(ds14, user_days(ds14));
  const CapAnalysis c15 = analyze_cap(ds15, user_days(ds15));
  // §3.8: potentially capped users are a small, growing share.
  EXPECT_LT(c14.capped_user_share, 0.10);
  EXPECT_GT(c15.capped_user_share, 0.0);
}

TEST(Cap, GapShrinksAfterRelaxation) {
  // Fig 19: the capped-vs-others gap shrinks after the 2015 relaxation.
  // The shared kTestScale fixture yields only ~6-10 capped user-days, so
  // gap_at_half (a CDF difference at the 0.5 quantile) is noise there;
  // the directional claim needs a larger campaign (~30/~100 capped
  // user-days at scale 0.6, where the gap is 0.32 vs 0.15).
  constexpr double kCapScale = 0.6;
  const Dataset big14 = sim::simulate_year(Year::Y2014, kCapScale);
  const Dataset big15 = sim::simulate_year(Year::Y2015, kCapScale);
  const CapAnalysis c14 = analyze_cap(big14, user_days(big14));
  const CapAnalysis c15 = analyze_cap(big15, user_days(big15));
  EXPECT_GT(c14.gap_at_half, c15.gap_at_half);
  EXPECT_GT(c14.gap_at_half, 0.05);
}

TEST(Cap, OthersBaselineMatchesPaper) {
  // Fig 19: ~30% of non-capped user-days fall below half their 3-day
  // mean in both years.
  for (Year y : {Year::Y2014, Year::Y2015}) {
    const Dataset& ds = campaign(y);
    const CapAnalysis c = analyze_cap(ds, user_days(ds));
    EXPECT_NEAR(c.others_below_half, 0.32, 0.10);
  }
}

TEST(Cap, DetectionAgreesWithSimulatorTruth) {
  const Dataset& ds = campaign(Year::Y2014);
  const CapAnalysis c = analyze_cap(ds, user_days(ds));
  // Every truly capped device should be flagged by the analysis: the
  // analysis sees the same traffic the enforcement acted on.
  int truth_users = 0;
  for (const DeviceTruth& t : ds.truth.devices) {
    bool any = false;
    for (std::uint8_t v : t.capped_day) any |= v != 0;
    truth_users += any;
  }
  EXPECT_NEAR(c.capped_user_share * static_cast<double>(ds.devices.size()),
              truth_users, truth_users * 0.35 + 2);
}

TEST(Offload, ImpactEstimatesMatchPaperBands) {
  // §4.1: WiFi:cell ~1.4:1; ~28% of RBB volume; ~12% of a median
  // residential customer's daily download.
  const Dataset& ds = campaign(Year::Y2015);
  const OffloadImpact o =
      offload_impact(ds, user_days(ds), campaign_classification(Year::Y2015));
  EXPECT_GT(o.wifi_to_cell_ratio, 1.0);
  EXPECT_LT(o.wifi_to_cell_ratio, 2.5);
  EXPECT_NEAR(o.est_rbb_share, 0.28, 0.15);
  EXPECT_NEAR(o.est_home_share, 0.12, 0.08);
}

TEST(Macro, Fig1Anchors) {
  // Cellular reaches ~20% of RBB at the end of 2014 (§1).
  EXPECT_NEAR(cellular_download_gbps(2014.9) / rbb_download_gbps(2014.9),
              0.20, 0.04);
  // RBB passes ~3.5 Tbps around 2015 and started near ~0.6 Tbps in 2006.
  EXPECT_NEAR(rbb_download_gbps(2015.0), 3500, 500);
  EXPECT_NEAR(rbb_download_gbps(2006.0), 600, 300);
}

TEST(Macro, SeriesMonotoneGrowth) {
  const auto series = macro_growth_series(4);
  ASSERT_GT(series.size(), 30u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].rbb_gbps, series[i - 1].rbb_gbps);
    EXPECT_GT(series[i].cell_gbps, series[i - 1].cell_gbps);
    EXPECT_LT(series[i].cell_gbps, series[i].rbb_gbps);
  }
}

TEST(Survey, DemographicsSumTo100) {
  for (Year y : kAllYears) {
    const Demographics d = demographics(campaign(y));
    double sum = 0;
    for (double p : d.percent) sum += p;
    EXPECT_NEAR(sum, 100.0, 1e-9);
    EXPECT_GT(d.respondents, 100);
  }
}

TEST(Survey, OfficeWorkersLargestGroup) {
  // Table 2: office workers are the top occupation (20-24%).
  const Demographics d = demographics(campaign(Year::Y2015));
  const double office =
      d.percent[static_cast<std::size_t>(Occupation::OfficeWorker)];
  for (int o = 0; o < kNumOccupations; ++o) {
    EXPECT_LE(d.percent[static_cast<std::size_t>(o)], office + 1e-9);
  }
  EXPECT_NEAR(office, 23.6, 5.0);
}

TEST(Survey, ApUsageRowsSumTo100) {
  const SurveyApUsage u = survey_ap_usage(campaign(Year::Y2015));
  for (int loc = 0; loc < kNumSurveyLocations; ++loc) {
    EXPECT_NEAR(u.yes[static_cast<std::size_t>(loc)] +
                    u.no[static_cast<std::size_t>(loc)] +
                    u.not_answered[static_cast<std::size_t>(loc)],
                100.0, 1e-9);
  }
}

TEST(Survey, Table8Shape) {
  // Home yes ~70-78%, office yes low (~26-32%), public ~45-54%, and
  // home/public grow over the years while office stays flat.
  const SurveyApUsage u13 = survey_ap_usage(campaign(Year::Y2013));
  const SurveyApUsage u15 = survey_ap_usage(campaign(Year::Y2015));
  EXPECT_NEAR(u15.yes[0], 78.2, 12.0);
  EXPECT_LT(u15.yes[1], 45.0);
  EXPECT_GT(u15.yes[0], u13.yes[0]);
  EXPECT_GT(u15.yes[2], u13.yes[2]);
}

TEST(Survey, PublicConnectivityOverReported) {
  // §4.2: users report more public connectivity than the traffic shows.
  const Dataset& ds = campaign(Year::Y2015);
  const SurveyApUsage u = survey_ap_usage(ds);
  double config = 0;
  for (const DeviceTruth& t : ds.truth.devices) config += t.uses_public_wifi;
  const double truth_pct = config / static_cast<double>(ds.devices.size()) * 100;
  EXPECT_GT(u.yes[2], truth_pct);
}

TEST(Survey, ReasonsOnlyWherePeopleSaidNo) {
  const SurveyReasons r = survey_reasons(campaign(Year::Y2015));
  for (int loc = 0; loc < kNumSurveyLocations; ++loc) {
    EXPECT_GT(r.respondents[static_cast<std::size_t>(loc)], 0);
    for (double p : r.percent[static_cast<std::size_t>(loc)]) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 100.0);
    }
  }
  // Table 9: "no available APs" is the top office reason (~52%).
  const double office_no_aps =
      r.percent[1][static_cast<std::size_t>(SurveyReason::NoAvailableAps)];
  EXPECT_GT(office_no_aps, 30.0);
}

TEST(Survey, SecurityConcernGrowsForPublicWifi) {
  // Table 9: public-WiFi security worry 15% (2014) -> 35% (2015).
  const SurveyReasons r14 = survey_reasons(campaign(Year::Y2014));
  const SurveyReasons r15 = survey_reasons(campaign(Year::Y2015));
  const auto sec = static_cast<std::size_t>(SurveyReason::SecurityIssue);
  EXPECT_GT(r15.percent[2][sec], r14.percent[2][sec]);
}

}  // namespace
}  // namespace tokyonet::analysis
